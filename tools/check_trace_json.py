#!/usr/bin/env python3
"""Validate telemetry artifacts written by the sim-time telemetry layer.

Usage:
    check_trace_json.py [--reconcile SUMMARY.csv] ARTIFACT [ARTIFACT ...]

The checker dispatches on the artifact's basename:

trace.json (Chrome trace-event JSON):
  * the document is well-formed JSON with a "traceEvents" list and the
    microsecond "displayTimeUnit" the exporter promises;
  * every event carries name/ph/pid/tid, and every non-metadata event a
    numeric ts;
  * sim timestamps are globally non-decreasing across non-metadata events
    (the recorder sorts stably by time, so any inversion is an exporter
    bug, not interleaving);
  * duration events pair up: each "E" closes the most recent open "B" on
    the same (pid, tid) stack with the same name, and no stack is left
    open at the end;
  * async request spans pair up: each "e" matches an open "b" with the
    same (cat, id), every "b" is eventually closed, and ends never
    precede their begins;
  * counter ("C") events carry at least one numeric series in args;
  * metadata ("M") process_name/thread_name events carry args.name.

health.json (fleet health scoreboard):
  * schema_version / build stamp (util::build_info) present;
  * every scoreboard row satisfies requests == served + shed,
    shed <= missed <= requests, attainment/miss_rate/shed_rate in [0, 1]
    (or null), and p50 <= p95 <= p99;
  * per-device and per-stream row counts each sum to the fleet row.

rollup.json (windowed rollups):
  * schema_version present, window_s > 0;
  * window ids strictly increasing per series, start_s == window * window_s;
  * per stream window: requests == ok + late + shed, served == ok + late,
    missed == late + shed, e2e sketch count == served, queue-wait sketch
    count == requests, sketch bucket counts sum to the sketch count;
  * per device window: throttle time and total OPP residency fit in the
    window;
  * totals reconcile with the sibling health.json's fleet row (counts
    exactly, energy to float tolerance).

--reconcile SUMMARY.csv additionally matches every health.json against the
harness CSV sink's episode summary: the artifact path's <scenario>/<arm>
directories identify the row (same sanitization rule as the sinks), and
the fleet/aggregate request counts must agree exactly.

Stdlib only; exit 0 when every file passes, 1 on validation failure,
2 on unreadable/malformed input. Run by CI on the telemetry smoke step.
"""

import csv
import json
import os
import sys

COUNT_KEYS = ("requests", "served", "shed", "missed")


def fail(path, message, errors):
    errors.append(f"{path}: {message}")


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"check_trace_json: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


# --- trace.json --------------------------------------------------------------


def check_trace(path, errors):
    doc = load_json(path)
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        print(f"check_trace_json: {path} has no traceEvents list", file=sys.stderr)
        sys.exit(2)
    if doc.get("displayTimeUnit") != "ms":
        fail(path, f"displayTimeUnit is {doc.get('displayTimeUnit')!r}, expected 'ms'",
             errors)

    events = doc["traceEvents"]
    last_ts = None
    sync_stacks = {}   # (pid, tid) -> [open "B" names]
    async_open = {}    # (cat, id) -> (begin name, begin ts)
    counters = 0

    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(path, f"{where} is not an object", errors)
            continue
        ph = ev.get("ph")
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            fail(path, f"{where} has no name", errors)
            continue
        if "pid" not in ev or "tid" not in ev:
            fail(path, f"{where} ({ph} {name!r}) lacks pid/tid", errors)
            continue

        if ph == "M":
            if name in ("process_name", "thread_name"):
                args = ev.get("args")
                if not isinstance(args, dict) or not args.get("name"):
                    fail(path, f"{where} metadata {name} lacks args.name", errors)
            continue

        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            fail(path, f"{where} ({ph} {name!r}) has non-numeric ts", errors)
            continue
        if last_ts is not None and ts < last_ts:
            fail(path, f"{where} ({ph} {name!r}) ts {ts} precedes previous {last_ts}",
                 errors)
        last_ts = ts

        key = (ev["pid"], ev["tid"])
        if ph == "B":
            sync_stacks.setdefault(key, []).append(name)
        elif ph == "E":
            stack = sync_stacks.get(key)
            if not stack:
                fail(path, f"{where} 'E' {name!r} on {key} closes nothing", errors)
            elif stack[-1] != name:
                fail(path, f"{where} 'E' {name!r} on {key} mismatches open "
                           f"'B' {stack[-1]!r}", errors)
            else:
                stack.pop()
        elif ph == "b":
            akey = (ev.get("cat"), ev.get("id"))
            if akey[1] is None:
                fail(path, f"{where} async 'b' {name!r} has no id", errors)
            elif akey in async_open:
                fail(path, f"{where} async 'b' {name!r} reuses open id {akey}", errors)
            else:
                async_open[akey] = (name, ts)
        elif ph == "e":
            akey = (ev.get("cat"), ev.get("id"))
            begin = async_open.pop(akey, None)
            if begin is None:
                fail(path, f"{where} async 'e' {name!r} has no open 'b' for {akey}",
                     errors)
            elif ts < begin[1]:
                fail(path, f"{where} async 'e' {name!r} at {ts} precedes its 'b' "
                           f"at {begin[1]}", errors)
        elif ph == "C":
            counters += 1
            args = ev.get("args")
            series = [v for v in (args or {}).values()
                      if isinstance(v, (int, float)) and not isinstance(v, bool)]
            if not series:
                fail(path, f"{where} counter {name!r} has no numeric args", errors)
        elif ph == "i":
            pass
        else:
            fail(path, f"{where} has unknown phase {ph!r}", errors)

    for key, stack in sync_stacks.items():
        if stack:
            fail(path, f"unclosed 'B' frames on {key}: {stack}", errors)
    for akey, (name, _) in async_open.items():
        fail(path, f"async span {name!r} {akey} never ends", errors)

    return f"{len(events)} events ({counters} counter samples)"


# --- shared schema helpers ---------------------------------------------------


def check_build_stamp(path, doc, errors):
    if not isinstance(doc.get("schema_version"), int) or doc["schema_version"] < 1:
        fail(path, f"schema_version is {doc.get('schema_version')!r}", errors)
    if not isinstance(doc.get("build"), str) or not doc["build"]:
        fail(path, "missing build stamp", errors)


def counts_of(row):
    return {k: row.get(k) for k in COUNT_KEYS}


def check_scoreboard_row(path, where, row, errors):
    for key in COUNT_KEYS + ("breaches",):
        v = row.get(key)
        if not isinstance(v, int) or v < 0:
            fail(path, f"{where}.{key} is {v!r}, want a non-negative integer", errors)
            return
    if row["requests"] != row["served"] + row["shed"]:
        fail(path, f"{where}: requests {row['requests']} != served {row['served']} "
                   f"+ shed {row['shed']}", errors)
    if not row["shed"] <= row["missed"] <= row["requests"]:
        fail(path, f"{where}: expected shed <= missed <= requests, got "
                   f"{row['shed']} / {row['missed']} / {row['requests']}", errors)
    for key in ("attainment", "miss_rate", "shed_rate"):
        v = row.get(key)
        if v is not None and not (isinstance(v, (int, float)) and 0.0 <= v <= 1.0):
            fail(path, f"{where}.{key} is {v!r}, want null or in [0, 1]", errors)
    quantiles = [row.get(k) for k in ("e2e_p50_ms", "e2e_p95_ms", "e2e_p99_ms")]
    if all(isinstance(q, (int, float)) for q in quantiles):
        if not quantiles[0] <= quantiles[1] <= quantiles[2]:
            fail(path, f"{where}: e2e quantiles not monotone: {quantiles}", errors)


# --- health.json -------------------------------------------------------------


def check_health(path, errors):
    doc = load_json(path)
    check_build_stamp(path, doc, errors)
    fleet = doc.get("fleet")
    if not isinstance(fleet, dict):
        fail(path, "missing fleet row", errors)
        return "invalid"
    check_scoreboard_row(path, "fleet", fleet, errors)
    for kind in ("devices", "streams"):
        rows = doc.get(kind)
        if not isinstance(rows, list):
            fail(path, f"missing {kind} rows", errors)
            continue
        sums = dict.fromkeys(COUNT_KEYS, 0)
        for row in rows:
            name = row.get("device") or row.get("stream") or "?"
            check_scoreboard_row(path, f"{kind}[{name}]", row, errors)
            for key in COUNT_KEYS:
                if isinstance(row.get(key), int):
                    sums[key] += row[key]
        for key in COUNT_KEYS:
            if sums[key] != fleet.get(key):
                fail(path, f"{kind} {key} sum {sums[key]} != fleet {fleet.get(key)}",
                     errors)
    return (f"{len(doc.get('devices', []))} devices, "
            f"{len(doc.get('streams', []))} streams, "
            f"{fleet.get('requests')} requests")


# --- rollup.json -------------------------------------------------------------

EPS = 1e-6


def check_sketch(path, where, sketch, errors):
    if not isinstance(sketch, dict):
        fail(path, f"{where} is not a sketch object", errors)
        return 0
    count = sketch.get("count")
    low = sketch.get("low", 0)
    buckets = sketch.get("buckets")
    if not isinstance(count, int) or not isinstance(buckets, list):
        fail(path, f"{where} lacks count/buckets", errors)
        return 0
    total = low + sum(b[1] for b in buckets if isinstance(b, list) and len(b) == 2)
    if total != count:
        fail(path, f"{where}: bucket counts {total} != count {count}", errors)
    return count


def check_window_series(path, where, series, window_s, errors):
    last = None
    for win in series:
        w = win.get("window")
        if not isinstance(w, int):
            fail(path, f"{where}: window id {w!r} not an integer", errors)
            return
        if last is not None and w <= last:
            fail(path, f"{where}: window {w} does not increase past {last}", errors)
        last = w
        start = win.get("start_s")
        want = w * window_s
        if not isinstance(start, (int, float)) or abs(start - want) > EPS * max(1.0, abs(want)):
            fail(path, f"{where}: window {w} start_s {start!r} != {want}", errors)


def check_rollup(path, errors):
    doc = load_json(path)
    check_build_stamp(path, doc, errors)
    window_s = doc.get("window_s")
    if not isinstance(window_s, (int, float)) or window_s <= 0:
        fail(path, f"window_s is {window_s!r}", errors)
        return "invalid"

    totals = dict.fromkeys(COUNT_KEYS, 0)
    energy = 0.0
    n_windows = 0
    for dev in doc.get("devices", []):
        name = dev.get("device", "?")
        series = dev.get("windows", [])
        check_window_series(path, f"device[{name}]", series, window_s, errors)
        for win in series:
            n_windows += 1
            where = f"device[{name}] window {win.get('window')}"
            energy += win.get("energy_j", 0.0)
            throttle = win.get("throttle_s", 0.0)
            if not -EPS <= throttle <= window_s + EPS:
                fail(path, f"{where}: throttle_s {throttle} outside window", errors)
            # Each per-level residency is serialized to 6 decimal places, so
            # the sum of rounded terms can overshoot by 0.5e-6 per level.
            levels = win.get("opp_residency_s", [])
            residency = sum(r[1] for r in levels)
            if residency > window_s + EPS * (1 + len(levels)):
                fail(path, f"{where}: OPP residency {residency} exceeds window", errors)
            check_sketch(path, f"{where} temp_c", win.get("temp_c"), errors)
    for st in doc.get("streams", []):
        name = f"{st.get('device', '?')}/{st.get('stream', '?')}"
        series = st.get("windows", [])
        check_window_series(path, f"stream[{name}]", series, window_s, errors)
        for win in series:
            n_windows += 1
            where = f"stream[{name}] window {win.get('window')}"
            ok, late, shed = (win.get(k, -1) for k in ("ok", "late", "shed"))
            if win.get("requests") != ok + late + shed:
                fail(path, f"{where}: requests != ok + late + shed", errors)
            if win.get("served") != ok + late:
                fail(path, f"{where}: served != ok + late", errors)
            if win.get("missed") != late + shed:
                fail(path, f"{where}: missed != late + shed", errors)
            e2e_count = check_sketch(path, f"{where} e2e_ms", win.get("e2e_ms"), errors)
            wait_count = check_sketch(path, f"{where} queue_wait_ms",
                                      win.get("queue_wait_ms"), errors)
            if e2e_count != win.get("served"):
                fail(path, f"{where}: e2e sketch count {e2e_count} != served "
                           f"{win.get('served')}", errors)
            if wait_count != win.get("requests"):
                fail(path, f"{where}: queue-wait sketch count {wait_count} != "
                           f"requests {win.get('requests')}", errors)
            for key in COUNT_KEYS:
                totals[key] += win.get(key, 0)

    # The sibling scoreboard is computed from the same accumulators; its
    # fleet row must agree with the windowed series exactly.
    health_path = os.path.join(os.path.dirname(path), "health.json")
    if os.path.exists(health_path):
        fleet = load_json(health_path).get("fleet", {})
        for key in COUNT_KEYS:
            if totals[key] != fleet.get(key):
                fail(path, f"window {key} total {totals[key]} != health.json fleet "
                           f"{fleet.get(key)}", errors)
        fleet_energy = fleet.get("energy_j", 0.0)
        if abs(energy - fleet_energy) > EPS * max(1.0, abs(fleet_energy)):
            fail(path, f"window energy total {energy} != health.json fleet "
                       f"{fleet_energy}", errors)
    return f"{n_windows} windows, {totals['requests']} requests"


# --- sweep.json --------------------------------------------------------------


def check_sweep(path, errors):
    """lotus_sweep JSON Lines output: one meta line, then one cell per line.

    Checks the cell-count identity (meta declares the full cartesian size,
    and the axis lengths multiply out to it), strictly increasing cell
    ordering, and per-cell summary reconciliation (requests == served +
    shed, rates in [0, 1], monotone latency quantiles, CSV-row agreement
    when a sibling sweep.csv exists).
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
    except (OSError, ValueError) as exc:
        print(f"check_trace_json: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    if not lines:
        fail(path, "empty sweep file", errors)
        return "invalid"

    meta = None
    cells = lines
    if "cells" in lines[0] and "cell" not in lines[0]:
        meta, cells = lines[0], lines[1:]
        check_build_stamp(path, meta, errors)
        axes = meta.get("axes")
        if not isinstance(axes, dict) or not axes:
            fail(path, "meta line lacks axes", errors)
        else:
            product = 1
            for axis, values in axes.items():
                if not isinstance(values, list) or not values:
                    fail(path, f"axis {axis!r} is empty", errors)
                    product = None
                    break
                product *= len(values)
            if product is not None and product != meta.get("cells"):
                fail(path, f"axes multiply to {product} cells but meta declares "
                           f"{meta.get('cells')}", errors)
        declared = meta.get("cells")
        if isinstance(declared, int) and len(cells) > declared:
            fail(path, f"{len(cells)} cell lines exceed declared {declared}", errors)

    last = None
    for i, cell in enumerate(cells):
        where = f"cell line {i}"
        idx = cell.get("cell")
        if not isinstance(idx, int) or idx < 0:
            fail(path, f"{where}: cell index is {idx!r}", errors)
            continue
        if last is not None and idx <= last:
            fail(path, f"{where}: cell {idx} does not increase past {last}", errors)
        last = idx
        for key in ("name", "router", "scheduler", "governor", "arrival",
                    "episode_seed"):
            if not isinstance(cell.get(key), str) or not cell[key]:
                fail(path, f"{where}: missing {key}", errors)
        summary = cell.get("summary")
        if not isinstance(summary, dict):
            fail(path, f"{where}: missing summary", errors)
            continue
        counts = {k: summary.get(k) for k in COUNT_KEYS}
        if any(not isinstance(v, int) or v < 0 for v in counts.values()):
            fail(path, f"{where}: non-integer counts {counts}", errors)
            continue
        if counts["requests"] != counts["served"] + counts["shed"]:
            fail(path, f"{where}: requests {counts['requests']} != served "
                       f"{counts['served']} + shed {counts['shed']}", errors)
        for key in ("miss_rate", "shed_rate"):
            v = summary.get(key)
            if not (isinstance(v, (int, float)) and 0.0 <= v <= 1.0):
                fail(path, f"{where}: {key} is {v!r}, want in [0, 1]", errors)
        quantiles = [summary.get(k) for k in ("p50_ms", "p95_ms", "p99_ms")]
        if all(isinstance(q, (int, float)) for q in quantiles):
            if not quantiles[0] <= quantiles[1] <= quantiles[2]:
                fail(path, f"{where}: latency quantiles not monotone: {quantiles}",
                     errors)

    # When the sibling CSV exists, both views of each cell must agree on
    # identity and counts (same emitter, so drift means a bug).
    csv_path = os.path.join(os.path.dirname(path), "sweep.csv")
    if os.path.exists(csv_path) and meta is not None:
        try:
            with open(csv_path, "r", encoding="utf-8", newline="") as fh:
                csv_rows = {int(row["cell"]): row for row in csv.DictReader(fh)}
        except (OSError, ValueError, KeyError) as exc:
            print(f"check_trace_json: cannot read {csv_path}: {exc}", file=sys.stderr)
            sys.exit(2)
        if len(csv_rows) != len(cells):
            fail(path, f"{len(cells)} JSON cells but {len(csv_rows)} CSV rows", errors)
        for cell in cells:
            row = csv_rows.get(cell.get("cell"))
            if row is None:
                fail(path, f"cell {cell.get('cell')} missing from sweep.csv", errors)
                continue
            if row.get("name") != cell.get("name"):
                fail(path, f"cell {cell['cell']}: CSV name {row.get('name')!r} != "
                           f"JSON {cell.get('name')!r}", errors)
            summary = cell.get("summary", {})
            for key in COUNT_KEYS:
                if row.get(key) != str(summary.get(key)):
                    fail(path, f"cell {cell['cell']}: CSV {key} {row.get(key)!r} != "
                               f"JSON {summary.get(key)!r}", errors)

    head = "meta + " if meta is not None else ""
    return f"{head}{len(cells)} cells"


# --- summary.csv reconciliation ----------------------------------------------


def sanitize(name):
    """The harness sinks' artifact-name sanitization (sinks.cpp)."""
    return "".join(c if (c.isascii() and c.isalnum()) or c in "-_" else "_"
                   for c in name)


def load_summary_rows(path):
    """(sanitized scenario, sanitized arm) -> aggregate-count row."""
    rows = {}
    try:
        with open(path, "r", encoding="utf-8", newline="") as fh:
            for row in csv.DictReader(fh):
                if "scope" in row:
                    if row["scope"] != "fleet":
                        continue
                elif row.get("stream") != "all":
                    continue
                key = (sanitize(row["scenario"]), sanitize(row["arm"]))
                rows[key] = {k: int(row[k]) for k in COUNT_KEYS}
    except (OSError, ValueError, KeyError) as exc:
        print(f"check_trace_json: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    return rows


def reconcile_health(path, summary_rows, csv_path, errors):
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    key = tuple(parts[-3:-1])  # .../<scenario>/<arm>/health.json
    expected = summary_rows.get(key)
    if expected is None:
        fail(path, f"no {csv_path} aggregate row for {key[0]}/{key[1]}", errors)
        return
    fleet = load_json(path).get("fleet", {})
    for k in COUNT_KEYS:
        if fleet.get(k) != expected[k]:
            fail(path, f"fleet {k} {fleet.get(k)} != summary.csv {expected[k]}",
                 errors)


# --- driver ------------------------------------------------------------------

CHECKERS = {
    "trace.json": check_trace,
    "health.json": check_health,
    "rollup.json": check_rollup,
    "sweep.json": check_sweep,
}


def main():
    args = sys.argv[1:]
    reconcile_csv = None
    if args and args[0] == "--reconcile":
        if len(args) < 2:
            print("check_trace_json: --reconcile wants a summary.csv", file=sys.stderr)
            return 2
        reconcile_csv = args[1]
        args = args[2:]
    if not args:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: check_trace_json.py [--reconcile SUMMARY.csv] "
              "ARTIFACT [ARTIFACT ...]", file=sys.stderr)
        return 2

    summary_rows = load_summary_rows(reconcile_csv) if reconcile_csv else None

    errors = []
    for path in args:
        checker = CHECKERS.get(os.path.basename(path))
        if checker is None:
            print(f"check_trace_json: {path}: unknown artifact (expected one of "
                  f"{', '.join(CHECKERS)})", file=sys.stderr)
            return 2
        detail = checker(path, errors)
        if summary_rows is not None and os.path.basename(path) == "health.json":
            reconcile_health(path, summary_rows, reconcile_csv, errors)
        status = "FAIL" if any(e.startswith(path + ":") for e in errors) else "ok"
        print(f"{path}: {detail} [{status}]")

    if errors:
        for e in errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    print("all artifacts valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
