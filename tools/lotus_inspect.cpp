// lotus_inspect: query and diff aggregated telemetry trees.
//
// A "tree" is any directory holding telemetry output from lotus_run /
// lotus_serve --telemetry: every subdirectory containing a health.json is
// one episode (scenario/arm), keyed by its relative path. The tool reads
// only the aggregated artifacts (health.json, rollup.json) -- never the
// raw event streams -- so it stays fast on fleet-scale output.
//
// Usage:
//   lotus_inspect summary <tree>
//       One row per episode: the fleet-wide scoreboard (requests, SLO
//       attainment, latency quantiles, thermal envelope, breaches, skew).
//   lotus_inspect top <tree> [--by <metric>] [--limit <n>]
//       Worst per-device rows across all episodes, ranked by a scoreboard
//       metric (default miss_rate; "worst" respects the metric's
//       direction, so --by headroom_min_c ranks ascending).
//   lotus_inspect timeseries <tree> --metric <name> [--device D] [--stream S]
//       Windowed rollup series as CSV (episode,device,stream,window,
//       start_s,value). Stream metrics: requests served shed missed ok
//       late e2e_p50_ms e2e_p95_ms e2e_p99_ms queue_wait_p95_ms. Device
//       metrics: energy_j throttle_s headroom_min_c temp_p50_c temp_p95_c
//       temp_p99_c temp_max_c.
//   lotus_inspect diff <treeA> <treeB> [--pct <p>] [--abs-eps <e>]
//       Per-metric deltas between two runs over fleet, per-device and
//       per-stream scoreboard rows. A delta is significant when
//       |b - a| > max(abs_eps, |a| * pct / 100) (both default 0: any
//       change counts). Significant deltas classify by the metric's
//       direction (e.g. missed up = regression, attainment up =
//       improvement); request-count changes and missing episodes/rows are
//       always regressions. Exit 0 when no regressions, 1 otherwise.
//       Passing two regular files instead of directories diffs them as
//       lotus_sweep sweep.json outputs, cell by cell, under the same
//       direction rules -- the regress gate for parameter sweeps.
//
// Exit codes: 0 ok / no regressions, 1 regressions found, 2 usage or
// malformed tree.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/ascii.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"

namespace {

namespace fs = std::filesystem;
using lotus::util::JsonValue;

[[noreturn]] void usage_error(const std::string& message) {
    std::fprintf(stderr,
                 "lotus_inspect: %s\n(see the header of tools/lotus_inspect.cpp "
                 "for usage)\n",
                 message.c_str());
    std::exit(2);
}

struct Episode {
    std::string key; ///< relative path of the episode directory
    fs::path dir;
    JsonValue health;
};

/// Every directory under `root` holding a health.json, in sorted key
/// order (deterministic independent of filesystem enumeration order).
std::vector<Episode> load_tree(const std::string& root) {
    if (!fs::is_directory(root)) usage_error("'" + root + "' is not a directory");
    std::vector<fs::path> found;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && entry.path().filename() == "health.json") {
            found.push_back(entry.path());
        }
    }
    std::sort(found.begin(), found.end());
    std::vector<Episode> episodes;
    episodes.reserve(found.size());
    for (const auto& path : found) {
        Episode ep;
        ep.dir = path.parent_path();
        ep.key = fs::relative(ep.dir, root).generic_string();
        if (ep.key == ".") ep.key = fs::path(root).filename().generic_string();
        try {
            ep.health = lotus::util::json_parse_file(path.string());
        } catch (const std::exception& e) {
            usage_error(std::string("bad health.json: ") + e.what());
        }
        episodes.push_back(std::move(ep));
    }
    if (episodes.empty()) {
        usage_error("no health.json under '" + root +
                    "' (was the run made with --telemetry and rollups on?)");
    }
    return episodes;
}

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

double field(const JsonValue& row, const std::string& key) {
    return row.number_or(key, kNaN);
}

std::string cell(double v) {
    if (std::isnan(v)) return "-";
    return lotus::util::format_double(v, 4);
}

// --- metric direction --------------------------------------------------------
// +1: higher is worse (latency, misses, heat). -1: lower is worse (served,
// attainment, headroom). 0: any change is a regression (workload identity).

const std::map<std::string, int>& metric_directions() {
    static const std::map<std::string, int> dirs = {
        {"requests", 0},          {"served", -1},
        {"shed", +1},             {"missed", +1},
        {"ok", -1},               {"late", +1},
        {"attainment", -1},       {"miss_rate", +1},
        {"shed_rate", +1},        {"e2e_p50_ms", +1},
        {"e2e_p95_ms", +1},       {"e2e_p99_ms", +1},
        {"queue_wait_p95_ms", +1}, {"energy_j", +1},
        {"throttle_s", +1},       {"peak_temp_c", +1},
        {"headroom_min_c", -1},   {"breaches", +1},
        {"load_skew", +1},        {"devices", 0},
        {"windows", 0},           {"p50_ms", +1},
        {"p95_ms", +1},           {"p99_ms", +1},
        {"mean_wait_ms", +1},     {"throughput_rps", -1},
        {"energy_per_req_j", +1}, {"migrations", +1},
        {"makespan_s", +1},       {"total_energy_j", +1},
    };
    return dirs;
}

int metric_direction(const std::string& metric) {
    const auto& dirs = metric_directions();
    const auto it = dirs.find(metric);
    if (it == dirs.end()) usage_error("unknown metric '" + metric + "'");
    return it->second;
}

// --- summary -----------------------------------------------------------------

int cmd_summary(const std::vector<Episode>& episodes) {
    lotus::util::TextTable table({"episode", "req", "served", "shed", "missed",
                                  "attain", "p50_ms", "p95_ms", "p99_ms",
                                  "peak_c", "headroom_c", "breach", "skew"});
    for (const auto& ep : episodes) {
        const auto& fleet = ep.health.at("fleet");
        table.add_row({ep.key, cell(field(fleet, "requests")),
                       cell(field(fleet, "served")), cell(field(fleet, "shed")),
                       cell(field(fleet, "missed")),
                       cell(field(fleet, "attainment")),
                       cell(field(fleet, "e2e_p50_ms")),
                       cell(field(fleet, "e2e_p95_ms")),
                       cell(field(fleet, "e2e_p99_ms")),
                       cell(field(fleet, "peak_temp_c")),
                       cell(field(fleet, "headroom_min_c")),
                       cell(field(fleet, "breaches")),
                       cell(field(fleet, "load_skew"))});
    }
    std::fputs(table.render("fleet health").c_str(), stdout);
    return 0;
}

// --- top ---------------------------------------------------------------------

int cmd_top(const std::vector<Episode>& episodes, const std::string& metric,
            std::size_t limit) {
    const int dir = metric_direction(metric);
    struct Row {
        std::string episode;
        std::string device;
        double value;
        const JsonValue* row;
    };
    std::vector<Row> rows;
    for (const auto& ep : episodes) {
        for (const auto& dev : ep.health.at("devices").items()) {
            const double v = field(dev, metric);
            if (std::isnan(v)) continue;
            rows.push_back({ep.key, dev.at("device").as_string(), v, &dev});
        }
    }
    if (rows.empty()) usage_error("metric '" + metric + "' has no values in this tree");
    // Worst-first: descending for higher-is-worse metrics, ascending for
    // lower-is-worse; (episode, device) breaks ties deterministically.
    std::stable_sort(rows.begin(), rows.end(), [dir](const Row& a, const Row& b) {
        if (a.value != b.value) {
            return dir < 0 ? a.value < b.value : a.value > b.value;
        }
        if (a.episode != b.episode) return a.episode < b.episode;
        return a.device < b.device;
    });
    if (rows.size() > limit) rows.resize(limit);

    lotus::util::TextTable table(
        {"episode", "device", metric, "req", "served", "missed", "breach"});
    for (const auto& r : rows) {
        table.add_row({r.episode, r.device, cell(r.value),
                       cell(field(*r.row, "requests")),
                       cell(field(*r.row, "served")),
                       cell(field(*r.row, "missed")),
                       cell(field(*r.row, "breaches"))});
    }
    std::fputs(table.render("worst by " + metric).c_str(), stdout);
    return 0;
}

// --- timeseries --------------------------------------------------------------

/// Pull `metric` out of one rollup window object, resolving sketch-derived
/// names (e2e_p95_ms -> windows[i].e2e_ms.p95) to their precomputed scalars.
std::optional<double> window_metric(const JsonValue& win, const std::string& metric) {
    static const std::map<std::string, std::pair<std::string, std::string>> sketched = {
        {"e2e_p50_ms", {"e2e_ms", "p50"}},
        {"e2e_p95_ms", {"e2e_ms", "p95"}},
        {"e2e_p99_ms", {"e2e_ms", "p99"}},
        {"queue_wait_p50_ms", {"queue_wait_ms", "p50"}},
        {"queue_wait_p95_ms", {"queue_wait_ms", "p95"}},
        {"queue_wait_p99_ms", {"queue_wait_ms", "p99"}},
        {"temp_p50_c", {"temp_c", "p50"}},
        {"temp_p95_c", {"temp_c", "p95"}},
        {"temp_p99_c", {"temp_c", "p99"}},
        {"temp_max_c", {"temp_c", "max"}},
    };
    const auto it = sketched.find(metric);
    if (it != sketched.end()) {
        const auto* sketch = win.find(it->second.first);
        if (!sketch) return std::nullopt;
        // An empty sketch (e.g. a shed-only window's e2e) has no quantiles.
        if (sketch->number_or("count", 0.0) == 0.0) return std::nullopt;
        const double v = sketch->number_or(it->second.second, kNaN);
        if (std::isnan(v)) return std::nullopt;
        return v;
    }
    const auto* v = win.find(metric);
    if (!v || v->is_null()) return std::nullopt;
    return v->as_number();
}

int cmd_timeseries(const std::vector<Episode>& episodes, const std::string& metric,
                   const std::string& device_filter,
                   const std::string& stream_filter) {
    std::fputs("episode,device,stream,window,start_s,value\n", stdout);
    std::size_t emitted = 0;
    const auto emit_series = [&](const std::string& episode,
                                 const std::string& device,
                                 const std::string& stream, const JsonValue& series) {
        if (!device_filter.empty() && device != device_filter) return;
        if (!stream_filter.empty() && stream != stream_filter) return;
        for (const auto& win : series.at("windows").items()) {
            const auto value = window_metric(win, metric);
            if (!value) continue;
            std::fprintf(stdout, "%s,%s,%s,%lld,%s,%s\n", episode.c_str(),
                         device.c_str(), stream.c_str(),
                         static_cast<long long>(win.at("window").as_number()),
                         lotus::util::format_double(field(win, "start_s"), 6).c_str(),
                         lotus::util::format_double(*value, 6).c_str());
            ++emitted;
        }
    };
    for (const auto& ep : episodes) {
        JsonValue rollup;
        try {
            rollup = lotus::util::json_parse_file((ep.dir / "rollup.json").string());
        } catch (const std::exception& e) {
            usage_error(std::string("bad rollup.json: ") + e.what());
        }
        for (const auto& dev : rollup.at("devices").items()) {
            emit_series(ep.key, dev.at("device").as_string(), "", dev);
        }
        for (const auto& st : rollup.at("streams").items()) {
            emit_series(ep.key, st.at("device").as_string(),
                        st.at("stream").as_string(), st);
        }
    }
    if (emitted == 0) {
        usage_error("metric '" + metric + "' matched no rollup windows");
    }
    return 0;
}

// --- diff --------------------------------------------------------------------

struct DiffStats {
    std::size_t regressions = 0;
    std::size_t improvements = 0;
};

/// Compare two scoreboard rows metric by metric (the row's own keys drive
/// the walk, so new fields are diffed without a schema update here).
void diff_row(const std::string& where, const JsonValue& a, const JsonValue& b,
              double pct, double abs_eps, DiffStats& stats) {
    const auto& dirs = metric_directions();
    for (const auto& [key, va] : a.members()) {
        const auto dit = dirs.find(key);
        if (dit == dirs.end()) continue; // identity fields (device, stream)
        const double x = va.is_null() ? kNaN : va.as_number();
        const double y = b.number_or(key, kNaN);
        if (std::isnan(x) && std::isnan(y)) continue;
        const double delta = y - x;
        const bool significant =
            std::isnan(x) != std::isnan(y) ||
            std::abs(delta) > std::max(abs_eps, std::abs(x) * pct / 100.0);
        if (!significant) continue;
        const int dir = dit->second;
        // NaN transitions and direction-0 metrics are always regressions.
        const bool regression = std::isnan(x) || std::isnan(y) || dir == 0 ||
                                (dir > 0 ? delta > 0.0 : delta < 0.0);
        std::fprintf(stdout, "  %-12s %s: %s -> %s (%+g)\n",
                     regression ? "REGRESSION" : "improvement",
                     (where + " " + key).c_str(), cell(x).c_str(), cell(y).c_str(),
                     delta);
        if (regression) {
            ++stats.regressions;
        } else {
            ++stats.improvements;
        }
    }
}

/// Diff two keyed row arrays (devices by "device", streams by "stream").
void diff_rows(const std::string& episode, const std::string& kind,
               const JsonValue& a, const JsonValue& b, double pct, double abs_eps,
               DiffStats& stats) {
    std::map<std::string, const JsonValue*> rows_a;
    std::map<std::string, const JsonValue*> rows_b;
    for (const auto& row : a.items()) rows_a[row.at(kind).as_string()] = &row;
    for (const auto& row : b.items()) rows_b[row.at(kind).as_string()] = &row;
    for (const auto& [name, row] : rows_a) {
        const auto it = rows_b.find(name);
        if (it == rows_b.end()) {
            std::fprintf(stdout, "  REGRESSION   %s/%s %s: missing in B\n",
                         episode.c_str(), kind.c_str(), name.c_str());
            ++stats.regressions;
            continue;
        }
        diff_row(episode + "/" + name, *row, *it->second, pct, abs_eps, stats);
    }
    for (const auto& [name, row] : rows_b) {
        (void)row;
        if (rows_a.find(name) == rows_a.end()) {
            std::fprintf(stdout, "  REGRESSION   %s/%s %s: only in B\n",
                         episode.c_str(), kind.c_str(), name.c_str());
            ++stats.regressions;
        }
    }
}

int cmd_diff(const std::vector<Episode>& a, const std::vector<Episode>& b,
             double pct, double abs_eps) {
    std::map<std::string, const Episode*> eps_a;
    std::map<std::string, const Episode*> eps_b;
    for (const auto& ep : a) eps_a[ep.key] = &ep;
    for (const auto& ep : b) eps_b[ep.key] = &ep;

    DiffStats stats;
    for (const auto& [key, ep_a] : eps_a) {
        const auto it = eps_b.find(key);
        if (it == eps_b.end()) {
            std::fprintf(stdout, "  REGRESSION   episode %s: missing in B\n",
                         key.c_str());
            ++stats.regressions;
            continue;
        }
        const auto& ha = ep_a->health;
        const auto& hb = it->second->health;
        diff_row(key + "/fleet", ha.at("fleet"), hb.at("fleet"), pct, abs_eps, stats);
        diff_rows(key, "device", ha.at("devices"), hb.at("devices"), pct, abs_eps,
                  stats);
        diff_rows(key, "stream", ha.at("streams"), hb.at("streams"), pct, abs_eps,
                  stats);
    }
    for (const auto& [key, ep] : eps_b) {
        (void)ep;
        if (eps_a.find(key) == eps_a.end()) {
            std::fprintf(stdout, "  REGRESSION   episode %s: only in B\n",
                         key.c_str());
            ++stats.regressions;
        }
    }
    std::fprintf(stdout, "diff: %zu regressions, %zu improvements\n",
                 stats.regressions, stats.improvements);
    return stats.regressions == 0 ? 0 : 1;
}

// --- sweep diff --------------------------------------------------------------

/// Parse a lotus_sweep JSON Lines file: cell name -> summary row. The meta
/// line (no "cell" key) is skipped; malformed lines are usage errors.
std::map<std::string, JsonValue> load_sweep(const std::string& path) {
    std::ifstream in(path);
    if (!in) usage_error("cannot read '" + path + "'");
    std::map<std::string, JsonValue> cells;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty()) continue;
        JsonValue doc;
        try {
            doc = lotus::util::json_parse(line);
        } catch (const std::exception& e) {
            usage_error(path + ":" + std::to_string(lineno) + ": " + e.what());
        }
        if (doc.find("cell") == nullptr) continue; // meta line
        cells[doc.at("name").as_string()] = doc.at("summary");
    }
    if (cells.empty()) usage_error("no sweep cells in '" + path + "'");
    return cells;
}

/// Diff two sweep.json files cell by cell: the same per-metric direction
/// rules as the telemetry-tree diff, with missing/extra cells counting as
/// regressions. This is what regress-gates a sweep between two builds.
int cmd_diff_sweep(const std::string& path_a, const std::string& path_b, double pct,
                   double abs_eps) {
    const auto a = load_sweep(path_a);
    const auto b = load_sweep(path_b);
    DiffStats stats;
    for (const auto& [name, row] : a) {
        const auto it = b.find(name);
        if (it == b.end()) {
            std::fprintf(stdout, "  REGRESSION   cell %s: missing in B\n", name.c_str());
            ++stats.regressions;
            continue;
        }
        diff_row(name, row, it->second, pct, abs_eps, stats);
    }
    for (const auto& [name, row] : b) {
        (void)row;
        if (a.find(name) == a.end()) {
            std::fprintf(stdout, "  REGRESSION   cell %s: only in B\n", name.c_str());
            ++stats.regressions;
        }
    }
    std::fprintf(stdout, "diff: %zu regressions, %zu improvements\n", stats.regressions,
                 stats.improvements);
    return stats.regressions == 0 ? 0 : 1;
}

// --- argument parsing --------------------------------------------------------

double parse_nonneg(const std::string& flag, const std::string& value) {
    char* end = nullptr;
    const double out = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size() || !(out >= 0.0)) {
        usage_error(flag + " wants a non-negative number, got '" + value + "'");
    }
    return out;
}

} // namespace

int main(int argc, char** argv) {
    const std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) usage_error("missing command (summary|top|timeseries|diff)");
    const std::string& command = args[0];

    std::vector<std::string> positional;
    std::string metric;
    std::string device_filter;
    std::string stream_filter;
    std::size_t limit = 10;
    double pct = 0.0;
    double abs_eps = 0.0;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const auto& arg = args[i];
        const auto next = [&]() -> const std::string& {
            if (i + 1 >= args.size()) usage_error(arg + " wants a value");
            return args[++i];
        };
        if (arg == "--by" || arg == "--metric") {
            metric = next();
        } else if (arg == "--limit") {
            const auto& v = next();
            limit = static_cast<std::size_t>(parse_nonneg("--limit", v));
            if (limit == 0) usage_error("--limit wants a positive integer");
        } else if (arg == "--device") {
            device_filter = next();
        } else if (arg == "--stream") {
            stream_filter = next();
        } else if (arg == "--pct") {
            pct = parse_nonneg("--pct", next());
        } else if (arg == "--abs-eps") {
            abs_eps = parse_nonneg("--abs-eps", next());
        } else if (!arg.empty() && arg[0] == '-') {
            usage_error("unknown flag " + arg);
        } else {
            positional.push_back(arg);
        }
    }

    try {
        if (command == "summary") {
            if (positional.size() != 1) usage_error("summary wants one tree");
            return cmd_summary(load_tree(positional[0]));
        }
        if (command == "top") {
            if (positional.size() != 1) usage_error("top wants one tree");
            return cmd_top(load_tree(positional[0]),
                           metric.empty() ? "miss_rate" : metric, limit);
        }
        if (command == "timeseries") {
            if (positional.size() != 1) usage_error("timeseries wants one tree");
            if (metric.empty()) usage_error("timeseries wants --metric");
            return cmd_timeseries(load_tree(positional[0]), metric, device_filter,
                                  stream_filter);
        }
        if (command == "diff") {
            if (positional.size() != 2) {
                usage_error("diff wants two trees (or two sweep.json files)");
            }
            // Two regular files diff as lotus_sweep outputs; directories as
            // telemetry trees.
            if (fs::is_regular_file(positional[0]) &&
                fs::is_regular_file(positional[1])) {
                return cmd_diff_sweep(positional[0], positional[1], pct, abs_eps);
            }
            return cmd_diff(load_tree(positional[0]), load_tree(positional[1]), pct,
                            abs_eps);
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "lotus_inspect: %s\n", e.what());
        return 2;
    }
    usage_error("unknown command '" + command + "'");
}
