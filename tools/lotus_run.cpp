// lotus_run: command-line experiment runner.
//
// Two modes, both driven by the ExperimentHarness:
//
//  * Scenario mode -- run named scenarios from the ScenarioRegistry, all
//    episodes scheduled concurrently on a fixed thread pool. Parallel runs
//    are byte-identical to serial runs for the same seed (per-episode seed
//    derivation), so `--jobs` is purely a throughput knob.
//
//      lotus_run --list-scenarios
//      lotus_run --scenario fig4_kitti --jobs 8
//      lotus_run --scenario table1_frcnn_kitti --scenario table1_mrcnn_kitti --chart
//      lotus_run --scenario fig4_kitti --format json
//
//  * Single-run mode -- one ad-hoc (device, detector, dataset, governor)
//    experiment, the "do one run" front end a downstream user reaches for
//    before scripting the bench harnesses.
//
//      lotus_run --device orin --detector frcnn --dataset kitti --governor lotus
//      lotus_run --governor fixed:7,5 --iterations 500 --chart
//      lotus_run --device mi11 --governor ztt --pretrain 2000 --csv out.csv
//
// Flags (all optional):
//   --list-scenarios enumerate the registry and exit
//   --scenario NAME  run a registry scenario (repeatable)
//   --jobs N         worker threads for scenario mode   (default: all cores)
//   --device     orin | mi11                        (default orin)
//   --detector   frcnn | mrcnn | yolo               (default frcnn)
//   --dataset    kitti | visdrone                   (default kitti)
//   --governor   default | ztt | lotus | performance | powersave | random
//              | ondemand | conservative | fixed:<cpu>,<gpu>   (default lotus)
//   --iterations N   measured frames                (default 3000 / 1000)
//   --pretrain   N   unrecorded training frames     (default 2500; agents only)
//   --seed       S   experiment seed                (default 42)
//   --constraint MS  latency constraint override in milliseconds
//   --format     table | json                       (default table; json emits
//                    one machine-readable document per scenario / run)
//   --csv PATH       single run: trace CSV path; scenario mode: output dir
//   --chart          render temperature/latency ASCII charts
//   --profile        print the internal profiler's report to stderr
//                    (per-scenario in scenario mode; see src/prof/)
//   --telemetry DIR  record sim-time telemetry per episode and write it
//                    under DIR/<scenario>/<arm>/: trace.json (Perfetto /
//                    chrome://tracing), events.jsonl, metrics.csv,
//                    breaches.jsonl, manifest.json, rollup.json,
//                    health.json (see src/telemetry/)
//   --telemetry-ring N  breaches.jsonl flight-recorder depth: last-N events
//                    per process snapshotted into each breach report
//                    (default 32; requires --telemetry, N >= 1)
//
// Unknown flags, unknown enum values and malformed numbers are rejected
// with a nonzero exit -- no silent fallbacks.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cli_common.hpp"

using namespace lotus;

namespace {

const std::string kTool = "lotus_run";

struct Options {
    std::string device = "orin";
    std::string detector = "frcnn";
    std::string dataset = "kitti";
    std::string governor = "lotus";
    std::size_t iterations = 0; // 0 -> device default
    std::size_t pretrain = 2500;
    cli::SeedFlag seed;
    double constraint_ms = 0.0; // 0 -> preset
    std::string csv_path;
    std::string telemetry_dir;
    std::size_t telemetry_ring = 0; // 0 -> recorder default
    cli::OutputFormat format = cli::OutputFormat::table;
    bool chart = false;
    bool profile = false;
    bool list_scenarios = false;
    std::vector<std::string> scenarios;
    std::size_t jobs = 0; // 0 -> hardware concurrency
    /// Single-run-only flags the user explicitly passed, so scenario mode
    /// can reject them instead of silently ignoring an override.
    std::vector<std::string> single_run_flags;
};

Options parse(int argc, char** argv) {
    Options opt;
    const auto need_value = [&](int& i) -> std::string {
        if (i + 1 >= argc) cli::usage_error(kTool, std::string("missing value for ") + argv[i]);
        return argv[++i];
    };
    const auto u64 = [&](const std::string& flag, const std::string& v) {
        return cli::parse_u64(kTool, flag, v);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const bool single_run_only =
            flag == "--device" || flag == "--detector" || flag == "--dataset" ||
            flag == "--governor" || flag == "--iterations" || flag == "--pretrain" ||
            flag == "--constraint";
        if (single_run_only) opt.single_run_flags.push_back(flag);
        if (flag == "--device") {
            opt.device = need_value(i);
        } else if (flag == "--detector") {
            opt.detector = need_value(i);
        } else if (flag == "--dataset") {
            opt.dataset = need_value(i);
        } else if (flag == "--governor") {
            opt.governor = need_value(i);
        } else if (flag == "--iterations") {
            opt.iterations = static_cast<std::size_t>(u64(flag, need_value(i)));
            if (opt.iterations == 0) cli::usage_error(kTool, "--iterations must be > 0");
        } else if (flag == "--pretrain") {
            opt.pretrain = static_cast<std::size_t>(u64(flag, need_value(i)));
        } else if (flag == "--seed") {
            cli::parse_seed(kTool, need_value(i), opt.seed);
        } else if (flag == "--constraint") {
            opt.constraint_ms = cli::parse_positive_double(kTool, flag, need_value(i));
        } else if (flag == "--format") {
            opt.format = cli::parse_format(kTool, need_value(i));
        } else if (flag == "--csv") {
            opt.csv_path = need_value(i);
        } else if (flag == "--telemetry") {
            opt.telemetry_dir = need_value(i);
            if (opt.telemetry_dir.empty()) {
                cli::usage_error(kTool, "--telemetry wants a directory");
            }
        } else if (flag == "--telemetry-ring") {
            opt.telemetry_ring = static_cast<std::size_t>(u64(flag, need_value(i)));
            if (opt.telemetry_ring == 0) {
                cli::usage_error(kTool, "--telemetry-ring must be >= 1");
            }
        } else if (flag == "--chart") {
            opt.chart = true;
        } else if (flag == "--profile") {
            opt.profile = true;
        } else if (flag == "--list-scenarios") {
            opt.list_scenarios = true;
        } else if (flag == "--scenario") {
            opt.scenarios.push_back(need_value(i));
        } else if (flag == "--jobs") {
            opt.jobs = static_cast<std::size_t>(u64(flag, need_value(i)));
            if (opt.jobs == 0) cli::usage_error(kTool, "--jobs must be >= 1");
        } else if (flag == "--help" || flag == "-h") {
            std::printf("see the header comment of tools/lotus_run.cpp for usage\n");
            std::exit(0);
        } else {
            cli::usage_error(kTool, "unknown flag " + flag);
        }
    }
    if (opt.telemetry_ring > 0 && opt.telemetry_dir.empty()) {
        cli::usage_error(kTool, "--telemetry-ring requires --telemetry");
    }
    return opt;
}

int list_scenarios() {
    const auto& registry = harness::ScenarioRegistry::instance();
    util::TextTable table({"scenario", "arms", "tags", "title"});
    for (const auto& s : registry.all()) {
        std::string tags;
        for (const auto& t : s.tags) tags += tags.empty() ? t : "," + t;
        table.add_row({s.name, std::to_string(s.arms.size()), tags, s.title});
    }
    std::printf("%s", table.render("scenario registry (" +
                                   std::to_string(registry.all().size()) + " scenarios)")
                          .c_str());
    return 0;
}

int run_scenarios(const Options& opt) {
    if (!opt.single_run_flags.empty()) {
        cli::usage_error(kTool, opt.single_run_flags.front() +
                                    " only applies to single-run mode; scenario "
                                    "definitions are fixed by the registry (tune "
                                    "--seed/--jobs/--format/--chart/--csv instead)");
    }
    const auto& registry = harness::ScenarioRegistry::instance();
    std::vector<const harness::Scenario*> batch;
    for (const auto& name : opt.scenarios) {
        const auto* s = registry.find(name);
        if (s == nullptr) {
            std::fprintf(stderr,
                         "lotus_run: unknown scenario '%s' (try --list-scenarios)\n",
                         name.c_str());
            return 2;
        }
        batch.push_back(s);
    }

    cli::RenderOptions render;
    render.format = opt.format;
    render.chart = opt.chart;
    render.csv_dir = opt.csv_path;
    render.profile = opt.profile;
    render.telemetry_dir = opt.telemetry_dir;
    render.telemetry_ring = opt.telemetry_ring;
    cli::reject_chart_with_json(kTool, render);
    cli::apply_profile_flag(render);

    const harness::ExperimentHarness harness(
        cli::harness_config(render, opt.jobs, opt.seed.value));
    // Status goes to stderr so stdout is byte-identical at any --jobs count.
    std::fprintf(stderr, "lotus_run: %zu scenario(s), %zu jobs, seed %llu\n", batch.size(),
                 harness.config().jobs,
                 static_cast<unsigned long long>(harness.config().seed));
    cli::render_results(render, batch, harness.run(batch));
    return 0;
}

int run_single(const Options& opt) {
    if (opt.chart && opt.format == cli::OutputFormat::json) {
        cli::usage_error(kTool, "--chart writes ASCII to stdout and cannot be combined "
                                "with --format json");
    }
    const auto spec = cli::parse_device(kTool, opt.device);
    const bool orin = spec.name.find("orin") != std::string::npos;
    const auto kind = cli::parse_detector(kTool, opt.detector);
    const auto dataset = cli::parse_dataset(kTool, opt.dataset);
    const std::size_t iterations =
        opt.iterations > 0 ? opt.iterations : (orin ? 3000 : 1000);

    harness::Scenario scenario(
        runtime::static_experiment(spec, kind, dataset, iterations, opt.pretrain));
    scenario.name = "cli";
    scenario.title = "lotus_run single experiment";
    if (opt.constraint_ms > 0.0) {
        scenario.config.schedule =
            workload::DomainSchedule::constant(dataset, opt.constraint_ms / 1e3);
    }
    scenario.arms.push_back(cli::make_governor_arm(kTool, opt.governor, spec));

    // Keep stdout clean for --format json; the banner is status, not data.
    std::fprintf(opt.format == cli::OutputFormat::json ? stderr : stdout,
                 "lotus_run: %s + %s + %s under %s (%zu iterations, seed %llu, "
                 "L=%.0f ms)\n",
                 spec.name.c_str(), detector::to_string(kind), dataset.c_str(),
                 scenario.arms[0].name.c_str(), iterations,
                 static_cast<unsigned long long>(opt.seed.value),
                 scenario.config.schedule.at(0).latency_constraint_s * 1e3);

    if (opt.profile) prof::set_enabled(true);
    harness::HarnessConfig cfg{
        .jobs = 1, .seed = opt.seed.value, .telemetry = !opt.telemetry_dir.empty()};
    if (opt.telemetry_ring > 0) cfg.telemetry_options.ring_capacity = opt.telemetry_ring;
    const harness::ExperimentHarness harness(cfg);
    const auto results = harness.run(scenario);
    const auto& trace = results[0].trace;

    if (opt.format == cli::OutputFormat::json) {
        std::printf("%s\n", harness::scenario_json(scenario, results).c_str());
    } else {
        const auto s = trace.summary();
        util::TextTable table({"metric", "value"});
        table.add_row({"mean latency (ms)", util::format_double(s.mean_latency_s * 1e3, 1)});
        table.add_row({"latency std (ms)", util::format_double(s.std_latency_s * 1e3, 1)});
        table.add_row({"satisfaction rate R_L (%)",
                       util::format_double(s.satisfaction_rate * 100.0, 1)});
        table.add_row({"mean device temp (C)", util::format_double(s.mean_device_temp, 1)});
        table.add_row({"max device temp (C)", util::format_double(s.max_device_temp, 1)});
        table.add_row({"mean power (W)", util::format_double(s.mean_power_w, 1)});
        table.add_row({"throttled frames (%)",
                       util::format_double(s.throttled_fraction * 100.0, 1)});
        table.add_row({"mean proposals", util::format_double(s.mean_proposals, 1)});
        std::printf("%s", table.render("summary").c_str());
    }

    if (opt.chart) {
        util::AsciiChart temp_chart(100, 12);
        temp_chart.add_series({"T_dev", util::downsample(trace.device_temps(), 100)});
        temp_chart.add_reference_line(platform::throttle_bound_celsius(spec), "trip");
        std::printf("%s\n", temp_chart.render("device temperature", "C").c_str());
        util::AsciiChart lat_chart(100, 12);
        lat_chart.add_series({"latency", util::downsample(trace.latencies_ms(), 100)});
        lat_chart.add_reference_line(
            scenario.config.schedule.at(0).latency_constraint_s * 1e3, "L");
        std::printf("%s\n", lat_chart.render("latency", "ms").c_str());
    }
    if (!opt.csv_path.empty()) {
        trace.write_csv(opt.csv_path);
        // Status line: keep stdout machine-readable under --format json.
        std::fprintf(opt.format == cli::OutputFormat::json ? stderr : stdout,
                     "trace written to %s (%zu rows)\n", opt.csv_path.c_str(),
                     trace.size());
    }
    if (!opt.telemetry_dir.empty()) {
        // Single-run mode bypasses render_results, so attach the sink by hand.
        harness::TelemetrySink(opt.telemetry_dir).consume(scenario, results);
    }
    if (opt.profile) {
        std::fprintf(stderr, "[profile] %s\n%s", scenario.name.c_str(),
                     prof::report_text().c_str());
        prof::reset();
    }
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    const auto opt = parse(argc, argv);
    if (opt.list_scenarios) return list_scenarios();
    if (!opt.scenarios.empty()) return run_scenarios(opt);
    return run_single(opt);
}
