// lotus_run: command-line experiment runner.
//
// Runs one (device, detector, dataset, governor) experiment and prints the
// paper-style summary; optionally dumps the per-iteration trace to CSV and
// renders trace charts. This is the "do one run" front end a downstream
// user reaches for before scripting the bench harnesses.
//
//   lotus_run --device orin --detector frcnn --dataset kitti --governor lotus
//   lotus_run --governor fixed:7,5 --iterations 500 --chart
//   lotus_run --device mi11 --governor ztt --pretrain 2000 --csv out.csv
//
// Flags (all optional):
//   --device     orin | mi11                        (default orin)
//   --detector   frcnn | mrcnn | yolo               (default frcnn)
//   --dataset    kitti | visdrone                   (default kitti)
//   --governor   default | ztt | lotus | performance | powersave | random
//              | ondemand | conservative | fixed:<cpu>,<gpu>   (default lotus)
//   --iterations N   measured frames                (default 3000 / 1000)
//   --pretrain   N   unrecorded training frames     (default 2500; agents only)
//   --seed       S   experiment seed                (default 42)
//   --constraint MS  latency constraint override in milliseconds
//   --csv PATH       write the per-iteration trace as CSV
//   --chart          render temperature/latency ASCII charts

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "lotus_repro.hpp"

using namespace lotus;

namespace {

struct Options {
    std::string device = "orin";
    std::string detector = "frcnn";
    std::string dataset = "kitti";
    std::string governor = "lotus";
    std::size_t iterations = 0; // 0 -> device default
    std::size_t pretrain = 2500;
    std::uint64_t seed = 42;
    double constraint_ms = 0.0; // 0 -> preset
    std::string csv_path;
    bool chart = false;
};

[[noreturn]] void usage_error(const std::string& message) {
    std::fprintf(stderr, "lotus_run: %s\n(see the header of tools/lotus_run.cpp for usage)\n",
                 message.c_str());
    std::exit(2);
}

Options parse(int argc, char** argv) {
    Options opt;
    const auto need_value = [&](int& i) -> std::string {
        if (i + 1 >= argc) usage_error(std::string("missing value for ") + argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--device") {
            opt.device = need_value(i);
        } else if (flag == "--detector") {
            opt.detector = need_value(i);
        } else if (flag == "--dataset") {
            opt.dataset = need_value(i);
        } else if (flag == "--governor") {
            opt.governor = need_value(i);
        } else if (flag == "--iterations") {
            opt.iterations = static_cast<std::size_t>(std::stoull(need_value(i)));
        } else if (flag == "--pretrain") {
            opt.pretrain = static_cast<std::size_t>(std::stoull(need_value(i)));
        } else if (flag == "--seed") {
            opt.seed = std::stoull(need_value(i));
        } else if (flag == "--constraint") {
            opt.constraint_ms = std::stod(need_value(i));
        } else if (flag == "--csv") {
            opt.csv_path = need_value(i);
        } else if (flag == "--chart") {
            opt.chart = true;
        } else if (flag == "--help" || flag == "-h") {
            std::printf("see the header comment of tools/lotus_run.cpp for usage\n");
            std::exit(0);
        } else {
            usage_error("unknown flag " + flag);
        }
    }
    return opt;
}

detector::DetectorKind parse_detector(const std::string& s) {
    if (s == "frcnn" || s == "faster_rcnn") return detector::DetectorKind::faster_rcnn;
    if (s == "mrcnn" || s == "mask_rcnn") return detector::DetectorKind::mask_rcnn;
    if (s == "yolo" || s == "yolov5") return detector::DetectorKind::yolo_v5;
    usage_error("unknown detector " + s);
}

std::unique_ptr<governors::Governor> make_governor(const Options& opt,
                                                   const platform::DeviceSpec& spec) {
    const auto cpu_levels = spec.cpu.opp.num_levels();
    const auto gpu_levels = spec.gpu.opp.num_levels();
    const bool orin = spec.name.find("orin") != std::string::npos;
    const std::string& g = opt.governor;

    if (g == "default") {
        return std::make_unique<governors::DefaultGovernor>(
            orin ? governors::DefaultGovernor::orin_nano()
                 : governors::DefaultGovernor::mi11_lite());
    }
    if (g == "ondemand" || g == "conservative") {
        return std::make_unique<governors::KernelGovernor>(
            g + "+simple_ondemand",
            g == "ondemand" ? governors::CpuPolicyKind::ondemand
                            : governors::CpuPolicyKind::conservative,
            governors::SimpleOndemandParams{});
    }
    if (g == "ztt") {
        governors::ZttConfig cfg;
        cfg.t_thres_celsius = platform::reward_threshold_celsius(spec);
        cfg.seed = opt.seed ^ 0xA5;
        return std::make_unique<governors::ZttGovernor>(cpu_levels, gpu_levels, cfg);
    }
    if (g == "lotus") {
        core::LotusConfig cfg;
        cfg.reward.t_thres_celsius = platform::reward_threshold_celsius(spec);
        cfg.seed = opt.seed ^ 0x5A;
        return std::make_unique<core::LotusAgent>(cpu_levels, gpu_levels, cfg);
    }
    if (g == "performance") return std::make_unique<governors::PerformanceGovernor>();
    if (g == "powersave") return std::make_unique<governors::PowersaveGovernor>();
    if (g == "random") return std::make_unique<governors::RandomGovernor>(opt.seed);
    if (g.rfind("fixed:", 0) == 0) {
        const auto spec_str = g.substr(6);
        const auto comma = spec_str.find(',');
        if (comma == std::string::npos) usage_error("fixed wants fixed:<cpu>,<gpu>");
        const auto cpu = static_cast<std::size_t>(std::stoul(spec_str.substr(0, comma)));
        const auto gpu = static_cast<std::size_t>(std::stoul(spec_str.substr(comma + 1)));
        return std::make_unique<governors::FixedGovernor>(cpu, gpu);
    }
    usage_error("unknown governor " + g);
}

} // namespace

int main(int argc, char** argv) {
    const auto opt = parse(argc, argv);

    const bool orin = opt.device == "orin" || opt.device == "jetson";
    if (!orin && opt.device != "mi11" && opt.device != "mi-11-lite") {
        usage_error("unknown device " + opt.device);
    }
    const auto spec = orin ? platform::orin_nano_spec() : platform::mi11_lite_spec();
    const auto kind = parse_detector(opt.detector);
    const std::string dataset =
        (opt.dataset == "kitti" || opt.dataset == "KITTI") ? "KITTI" : "VisDrone2019";
    const std::size_t iterations =
        opt.iterations > 0 ? opt.iterations : (orin ? 3000 : 1000);

    auto cfg = runtime::static_experiment(spec, kind, dataset, iterations, opt.pretrain,
                                          opt.seed);
    if (opt.constraint_ms > 0.0) {
        cfg.schedule = workload::DomainSchedule::constant(dataset, opt.constraint_ms / 1e3);
    }

    auto governor = make_governor(opt, spec);
    if (governor->decision_overhead_s() == 0.0) cfg.pretrain_iterations = 0;

    std::printf("lotus_run: %s + %s + %s under %s (%zu iterations, seed %llu, L=%.0f ms)\n",
                spec.name.c_str(), detector::to_string(kind), dataset.c_str(),
                governor->name().c_str(), iterations,
                static_cast<unsigned long long>(opt.seed),
                cfg.schedule.at(0).latency_constraint_s * 1e3);

    runtime::ExperimentRunner runner(cfg);
    const auto trace = runner.run(*governor);
    const auto s = trace.summary();

    util::TextTable table({"metric", "value"});
    table.add_row({"mean latency (ms)", util::format_double(s.mean_latency_s * 1e3, 1)});
    table.add_row({"latency std (ms)", util::format_double(s.std_latency_s * 1e3, 1)});
    table.add_row({"satisfaction rate R_L (%)",
                   util::format_double(s.satisfaction_rate * 100.0, 1)});
    table.add_row({"mean device temp (C)", util::format_double(s.mean_device_temp, 1)});
    table.add_row({"max device temp (C)", util::format_double(s.max_device_temp, 1)});
    table.add_row({"mean power (W)", util::format_double(s.mean_power_w, 1)});
    table.add_row({"throttled frames (%)",
                   util::format_double(s.throttled_fraction * 100.0, 1)});
    table.add_row({"mean proposals", util::format_double(s.mean_proposals, 1)});
    std::printf("%s", table.render("summary").c_str());

    if (opt.chart) {
        util::AsciiChart temp_chart(100, 12);
        temp_chart.add_series({"T_dev", util::downsample(trace.device_temps(), 100)});
        temp_chart.add_reference_line(platform::throttle_bound_celsius(spec), "trip");
        std::printf("%s\n", temp_chart.render("device temperature", "C").c_str());
        util::AsciiChart lat_chart(100, 12);
        lat_chart.add_series({"latency", util::downsample(trace.latencies_ms(), 100)});
        lat_chart.add_reference_line(cfg.schedule.at(0).latency_constraint_s * 1e3, "L");
        std::printf("%s\n", lat_chart.render("latency", "ms").c_str());
    }
    if (!opt.csv_path.empty()) {
        trace.write_csv(opt.csv_path);
        std::printf("trace written to %s (%zu rows)\n", opt.csv_path.c_str(), trace.size());
    }
    return 0;
}
