// lotus_run: command-line experiment runner.
//
// Two modes, both driven by the ExperimentHarness:
//
//  * Scenario mode -- run named scenarios from the ScenarioRegistry, all
//    episodes scheduled concurrently on a fixed thread pool. Parallel runs
//    are byte-identical to serial runs for the same seed (per-episode seed
//    derivation), so `--jobs` is purely a throughput knob.
//
//      lotus_run --list-scenarios
//      lotus_run --scenario fig4_kitti --jobs 8
//      lotus_run --scenario table1_frcnn_kitti --scenario table1_mrcnn_kitti --chart
//
//  * Single-run mode -- one ad-hoc (device, detector, dataset, governor)
//    experiment, the "do one run" front end a downstream user reaches for
//    before scripting the bench harnesses.
//
//      lotus_run --device orin --detector frcnn --dataset kitti --governor lotus
//      lotus_run --governor fixed:7,5 --iterations 500 --chart
//      lotus_run --device mi11 --governor ztt --pretrain 2000 --csv out.csv
//
// Flags (all optional):
//   --list-scenarios enumerate the registry and exit
//   --scenario NAME  run a registry scenario (repeatable)
//   --jobs N         worker threads for scenario mode   (default: all cores)
//   --device     orin | mi11                        (default orin)
//   --detector   frcnn | mrcnn | yolo               (default frcnn)
//   --dataset    kitti | visdrone                   (default kitti)
//   --governor   default | ztt | lotus | performance | powersave | random
//              | ondemand | conservative | fixed:<cpu>,<gpu>   (default lotus)
//   --iterations N   measured frames                (default 3000 / 1000)
//   --pretrain   N   unrecorded training frames     (default 2500; agents only)
//   --seed       S   experiment seed                (default 42)
//   --constraint MS  latency constraint override in milliseconds
//   --csv PATH       single run: trace CSV path; scenario mode: output dir
//   --chart          render temperature/latency ASCII charts
//
// Unknown flags, unknown enum values and malformed numbers are rejected
// with a nonzero exit -- no silent fallbacks.

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "lotus_repro.hpp"

using namespace lotus;

namespace {

struct Options {
    std::string device = "orin";
    std::string detector = "frcnn";
    std::string dataset = "kitti";
    std::string governor = "lotus";
    std::size_t iterations = 0; // 0 -> device default
    std::size_t pretrain = 2500;
    std::uint64_t seed = 42;
    double constraint_ms = 0.0; // 0 -> preset
    std::string csv_path;
    bool chart = false;
    bool list_scenarios = false;
    std::vector<std::string> scenarios;
    std::size_t jobs = 0; // 0 -> hardware concurrency
    /// Single-run-only flags the user explicitly passed, so scenario mode
    /// can reject them instead of silently ignoring an override.
    std::vector<std::string> single_run_flags;
};

[[noreturn]] void usage_error(const std::string& message) {
    std::fprintf(stderr, "lotus_run: %s\n(see the header of tools/lotus_run.cpp for usage)\n",
                 message.c_str());
    std::exit(2);
}

std::uint64_t parse_u64(const std::string& flag, const std::string& value) {
    std::uint64_t out = 0;
    const auto* first = value.data();
    const auto* last = value.data() + value.size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    if (value.empty() || ec != std::errc{} || ptr != last) {
        usage_error(flag + " wants a non-negative integer, got '" + value + "'");
    }
    return out;
}

double parse_positive_double(const std::string& flag, const std::string& value) {
    char* end = nullptr;
    const double out = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size() || !(out > 0.0)) {
        usage_error(flag + " wants a positive number, got '" + value + "'");
    }
    return out;
}

Options parse(int argc, char** argv) {
    Options opt;
    const auto need_value = [&](int& i) -> std::string {
        if (i + 1 >= argc) usage_error(std::string("missing value for ") + argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const bool single_run_only =
            flag == "--device" || flag == "--detector" || flag == "--dataset" ||
            flag == "--governor" || flag == "--iterations" || flag == "--pretrain" ||
            flag == "--constraint";
        if (single_run_only) opt.single_run_flags.push_back(flag);
        if (flag == "--device") {
            opt.device = need_value(i);
        } else if (flag == "--detector") {
            opt.detector = need_value(i);
        } else if (flag == "--dataset") {
            opt.dataset = need_value(i);
        } else if (flag == "--governor") {
            opt.governor = need_value(i);
        } else if (flag == "--iterations") {
            opt.iterations = static_cast<std::size_t>(parse_u64(flag, need_value(i)));
            if (opt.iterations == 0) usage_error("--iterations must be > 0");
        } else if (flag == "--pretrain") {
            opt.pretrain = static_cast<std::size_t>(parse_u64(flag, need_value(i)));
        } else if (flag == "--seed") {
            opt.seed = parse_u64(flag, need_value(i));
        } else if (flag == "--constraint") {
            opt.constraint_ms = parse_positive_double(flag, need_value(i));
        } else if (flag == "--csv") {
            opt.csv_path = need_value(i);
        } else if (flag == "--chart") {
            opt.chart = true;
        } else if (flag == "--list-scenarios") {
            opt.list_scenarios = true;
        } else if (flag == "--scenario") {
            opt.scenarios.push_back(need_value(i));
        } else if (flag == "--jobs") {
            opt.jobs = static_cast<std::size_t>(parse_u64(flag, need_value(i)));
            if (opt.jobs == 0) usage_error("--jobs must be >= 1");
        } else if (flag == "--help" || flag == "-h") {
            std::printf("see the header comment of tools/lotus_run.cpp for usage\n");
            std::exit(0);
        } else {
            usage_error("unknown flag " + flag);
        }
    }
    return opt;
}

detector::DetectorKind parse_detector(const std::string& s) {
    if (s == "frcnn" || s == "faster_rcnn") return detector::DetectorKind::faster_rcnn;
    if (s == "mrcnn" || s == "mask_rcnn") return detector::DetectorKind::mask_rcnn;
    if (s == "yolo" || s == "yolov5") return detector::DetectorKind::yolo_v5;
    usage_error("unknown detector " + s);
}

harness::ArmSpec make_arm(const Options& opt, const platform::DeviceSpec& spec) {
    const std::string& g = opt.governor;

    if (g == "default") return harness::default_arm(spec);
    if (g == "ztt") return harness::ztt_arm(spec);
    if (g == "lotus") return harness::lotus_arm(spec);

    const auto simple = [&g](auto factory) {
        return harness::ArmSpec{
            .name = g,
            .make = std::move(factory),
            .paper = std::nullopt,
            .tweak = nullptr,
        };
    };
    if (g == "ondemand" || g == "conservative") {
        return simple([g](std::uint64_t) -> std::unique_ptr<governors::Governor> {
            return std::make_unique<governors::KernelGovernor>(
                g + "+simple_ondemand",
                g == "ondemand" ? governors::CpuPolicyKind::ondemand
                                : governors::CpuPolicyKind::conservative,
                governors::SimpleOndemandParams{});
        });
    }
    if (g == "performance") {
        return simple([](std::uint64_t) -> std::unique_ptr<governors::Governor> {
            return std::make_unique<governors::PerformanceGovernor>();
        });
    }
    if (g == "powersave") {
        return simple([](std::uint64_t) -> std::unique_ptr<governors::Governor> {
            return std::make_unique<governors::PowersaveGovernor>();
        });
    }
    if (g == "random") {
        return simple([](std::uint64_t seed) -> std::unique_ptr<governors::Governor> {
            return std::make_unique<governors::RandomGovernor>(seed);
        });
    }
    if (g.rfind("fixed:", 0) == 0) {
        const auto spec_str = g.substr(6);
        const auto comma = spec_str.find(',');
        if (comma == std::string::npos) {
            usage_error("malformed --governor '" + g + "': fixed wants fixed:<cpu>,<gpu>");
        }
        const auto cpu = static_cast<std::size_t>(
            parse_u64("--governor fixed:<cpu>", spec_str.substr(0, comma)));
        const auto gpu = static_cast<std::size_t>(
            parse_u64("--governor fixed:<gpu>", spec_str.substr(comma + 1)));
        if (cpu >= spec.cpu.opp.num_levels() || gpu >= spec.gpu.opp.num_levels()) {
            usage_error("fixed:" + std::to_string(cpu) + "," + std::to_string(gpu) +
                        " is outside the device's ladder (" +
                        std::to_string(spec.cpu.opp.num_levels()) + " CPU x " +
                        std::to_string(spec.gpu.opp.num_levels()) + " GPU levels)");
        }
        return harness::fixed_arm(cpu, gpu);
    }
    usage_error("unknown governor " + g);
}

int list_scenarios() {
    const auto& registry = harness::ScenarioRegistry::instance();
    util::TextTable table({"scenario", "arms", "tags", "title"});
    for (const auto& s : registry.all()) {
        std::string tags;
        for (const auto& t : s.tags) tags += tags.empty() ? t : "," + t;
        table.add_row({s.name, std::to_string(s.arms.size()), tags, s.title});
    }
    std::printf("%s", table.render("scenario registry (" +
                                   std::to_string(registry.all().size()) + " scenarios)")
                          .c_str());
    return 0;
}

int run_scenarios(const Options& opt) {
    if (!opt.single_run_flags.empty()) {
        usage_error(opt.single_run_flags.front() +
                    " only applies to single-run mode; scenario definitions are fixed "
                    "by the registry (tune --seed/--jobs/--chart/--csv instead)");
    }
    const auto& registry = harness::ScenarioRegistry::instance();
    std::vector<const harness::Scenario*> batch;
    for (const auto& name : opt.scenarios) {
        const auto* s = registry.find(name);
        if (s == nullptr) {
            std::fprintf(stderr,
                         "lotus_run: unknown scenario '%s' (try --list-scenarios)\n",
                         name.c_str());
            return 2;
        }
        batch.push_back(s);
    }

    // Compose the requested sinks; each consumes every scenario's results.
    std::vector<std::unique_ptr<harness::ResultSink>> sinks;
    if (opt.chart) sinks.push_back(std::make_unique<harness::AsciiFigureSink>());
    sinks.push_back(std::make_unique<harness::SummaryTableSink>());
    if (!opt.csv_path.empty()) {
        sinks.push_back(std::make_unique<harness::CsvSink>(opt.csv_path));
    }

    const harness::ExperimentHarness harness({.jobs = opt.jobs, .seed = opt.seed});
    // Status goes to stderr so stdout is byte-identical at any --jobs count.
    std::fprintf(stderr, "lotus_run: %zu scenario(s), %zu jobs, seed %llu\n", batch.size(),
                 harness.config().jobs,
                 static_cast<unsigned long long>(harness.config().seed));
    auto results = harness.run(batch);

    // Results arrive in declaration order; regroup per scenario for the sinks.
    std::size_t cursor = 0;
    for (const auto* s : batch) {
        const std::vector<harness::EpisodeResult> slice(
            std::make_move_iterator(results.begin() + static_cast<std::ptrdiff_t>(cursor)),
            std::make_move_iterator(results.begin() +
                                    static_cast<std::ptrdiff_t>(cursor + s->arms.size())));
        cursor += s->arms.size();
        for (const auto& sink : sinks) sink->consume(*s, slice);
        std::printf("\n");
    }
    return 0;
}

int run_single(const Options& opt) {
    const bool orin = opt.device == "orin" || opt.device == "jetson";
    const bool mi11 = opt.device == "mi11" || opt.device == "mi-11-lite";
    if (!orin && !mi11) usage_error("unknown device " + opt.device);
    const auto spec = orin ? platform::orin_nano_spec() : platform::mi11_lite_spec();
    const auto kind = parse_detector(opt.detector);

    std::string dataset;
    if (opt.dataset == "kitti" || opt.dataset == "KITTI") {
        dataset = "KITTI";
    } else if (opt.dataset == "visdrone" || opt.dataset == "VisDrone2019") {
        dataset = "VisDrone2019";
    } else {
        usage_error("unknown dataset " + opt.dataset);
    }
    const std::size_t iterations =
        opt.iterations > 0 ? opt.iterations : (orin ? 3000 : 1000);

    harness::Scenario scenario(
        runtime::static_experiment(spec, kind, dataset, iterations, opt.pretrain));
    scenario.name = "cli";
    scenario.title = "lotus_run single experiment";
    if (opt.constraint_ms > 0.0) {
        scenario.config.schedule =
            workload::DomainSchedule::constant(dataset, opt.constraint_ms / 1e3);
    }
    scenario.arms.push_back(make_arm(opt, spec));

    std::printf("lotus_run: %s + %s + %s under %s (%zu iterations, seed %llu, "
                "L=%.0f ms)\n",
                spec.name.c_str(), detector::to_string(kind), dataset.c_str(),
                scenario.arms[0].name.c_str(), iterations,
                static_cast<unsigned long long>(opt.seed),
                scenario.config.schedule.at(0).latency_constraint_s * 1e3);

    const harness::ExperimentHarness harness({.jobs = 1, .seed = opt.seed});
    const auto results = harness.run(scenario);
    const auto& trace = results[0].trace;
    const auto s = trace.summary();

    util::TextTable table({"metric", "value"});
    table.add_row({"mean latency (ms)", util::format_double(s.mean_latency_s * 1e3, 1)});
    table.add_row({"latency std (ms)", util::format_double(s.std_latency_s * 1e3, 1)});
    table.add_row({"satisfaction rate R_L (%)",
                   util::format_double(s.satisfaction_rate * 100.0, 1)});
    table.add_row({"mean device temp (C)", util::format_double(s.mean_device_temp, 1)});
    table.add_row({"max device temp (C)", util::format_double(s.max_device_temp, 1)});
    table.add_row({"mean power (W)", util::format_double(s.mean_power_w, 1)});
    table.add_row({"throttled frames (%)",
                   util::format_double(s.throttled_fraction * 100.0, 1)});
    table.add_row({"mean proposals", util::format_double(s.mean_proposals, 1)});
    std::printf("%s", table.render("summary").c_str());

    if (opt.chart) {
        util::AsciiChart temp_chart(100, 12);
        temp_chart.add_series({"T_dev", util::downsample(trace.device_temps(), 100)});
        temp_chart.add_reference_line(platform::throttle_bound_celsius(spec), "trip");
        std::printf("%s\n", temp_chart.render("device temperature", "C").c_str());
        util::AsciiChart lat_chart(100, 12);
        lat_chart.add_series({"latency", util::downsample(trace.latencies_ms(), 100)});
        lat_chart.add_reference_line(
            scenario.config.schedule.at(0).latency_constraint_s * 1e3, "L");
        std::printf("%s\n", lat_chart.render("latency", "ms").c_str());
    }
    if (!opt.csv_path.empty()) {
        trace.write_csv(opt.csv_path);
        std::printf("trace written to %s (%zu rows)\n", opt.csv_path.c_str(), trace.size());
    }
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    const auto opt = parse(argc, argv);
    if (opt.list_scenarios) return list_scenarios();
    if (!opt.scenarios.empty()) return run_scenarios(opt);
    return run_single(opt);
}
