#!/usr/bin/env python3
"""Scale gate for the .ltrc trace pipeline: million-request traces in O(1)
memory.

Drives lotus_trace through synth -> info -> slice on a 1,000,000-request
trace and asserts:

  1. synth writes the full trace (info reports exactly the requested
     record count and the expected 64-byte-record file size);
  2. slicing a million-record trace by id range is effectively O(1)
     (the slice holds exactly the requested window);
  3. peak RSS of every child stays under --rss-limit-mb: the Writer,
     Reader and slicer all stream, so memory must not scale with record
     count. The bound is generous (default 128 MiB; sanitizer builds need
     more) -- materialising 10^6 requests would blow well past it.

Usage:
    trace_scale_gate.py --trace PATH/TO/lotus_trace [--requests N]
        [--rss-limit-mb M] [--workdir DIR]

Exit 0 when every property holds, 1 otherwise, 2 on setup failure.
"""

import argparse
import os
import re
import resource
import shutil
import subprocess
import sys
import tempfile

HEADER_BYTES = 72
RECORD_BYTES = 64


def run_measured(cmd):
    """Run a child and return (proc, peak child RSS in MiB since the last
    call). ru_maxrss is a high-water mark over all waited-for children, so
    the reading is only exact for the largest child so far; every child
    being under the limit is exactly what the gate wants to know."""
    proc = subprocess.run(cmd, capture_output=True, text=True)
    peak_kib = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return proc, peak_kib / 1024.0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--trace", required=True)
    ap.add_argument("--requests", type=int, default=1_000_000)
    ap.add_argument("--rss-limit-mb", type=float, default=128.0)
    ap.add_argument("--workdir")
    args = ap.parse_args()

    workdir = args.workdir or tempfile.mkdtemp(prefix="trace_scale_gate_")
    os.makedirs(workdir, exist_ok=True)
    big = os.path.join(workdir, "big.ltrc")
    window = os.path.join(workdir, "window.ltrc")
    streams = 4
    total = args.requests * streams

    failures = []

    def check_child(name, proc, rss_mb):
        if proc.returncode != 0:
            print(f"trace_scale_gate: {name} failed:\n{proc.stderr}", file=sys.stderr)
            sys.exit(2)
        if rss_mb > args.rss_limit_mb:
            failures.append(f"{name} peaked at {rss_mb:.1f} MiB "
                            f"(limit {args.rss_limit_mb:.0f} MiB)")

    proc, rss = run_measured([args.trace, "synth", big,
                              "--requests", str(args.requests),
                              "--streams", str(streams), "--rate", "5.0"])
    check_child("synth", proc, rss)

    size = os.path.getsize(big)
    if size <= HEADER_BYTES + total * RECORD_BYTES - RECORD_BYTES:
        failures.append(f"big.ltrc is {size} bytes, too small for {total} records")

    proc, rss = run_measured([args.trace, "info", big])
    check_child("info", proc, rss)
    m = re.search(r"records:\s+(\d+)", proc.stdout)
    if not m or int(m.group(1)) != total:
        failures.append(f"info reported {m.group(1) if m else 'nothing'} records, "
                        f"expected {total}")

    lo, hi = total // 2, total // 2 + 1000
    proc, rss = run_measured([args.trace, "slice", big, window,
                              "--ids", f"{lo}:{hi}"])
    check_child("slice", proc, rss)

    proc, rss = run_measured([args.trace, "info", window])
    check_child("info(slice)", proc, rss)
    m = re.search(r"records:\s+(\d+)", proc.stdout)
    if not m or int(m.group(1)) != hi - lo:
        failures.append(f"slice holds {m.group(1) if m else 'nothing'} records, "
                        f"expected {hi - lo}")

    shutil.rmtree(workdir, ignore_errors=True)
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print(f"trace_scale_gate: {total} records synthesised, inspected and sliced "
          f"under {args.rss_limit_mb:.0f} MiB")
    return 0


if __name__ == "__main__":
    sys.exit(main())
