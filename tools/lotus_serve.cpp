// lotus_serve: multi-stream serving front end.
//
// Two modes, both driven by the ExperimentHarness over serving scenarios:
//
//  * Scenario mode -- run named serving scenarios from the ScenarioRegistry
//    (the serve_* catalog half). Parallel runs are byte-identical to serial
//    runs for the same seed, so `--jobs` is purely a throughput knob.
//
//      lotus_serve --list-scenarios
//      lotus_serve --scenario serve_saturation --jobs 4
//      lotus_serve --scenario serve_light --format json
//
//  * Ad-hoc mode -- build one serving experiment from flags: N identical
//    streams (phase-staggered so they do not arrive in lockstep) of the
//    given dataset/arrival process, one governor, one scheduler.
//
//      lotus_serve --streams 8 --arrival burst --scheduler edf --governor lotus
//      lotus_serve --streams 4 --arrival poisson --rate 0.5 --slo 800 --csv out/
//
// Flags (all optional):
//   --list-scenarios  enumerate serving scenarios and exit
//   --scenario NAME   run a registry serving scenario (repeatable)
//   --jobs N          worker threads for scenario mode  (default: all cores)
//   --device     orin | mi11                            (default orin)
//   --detector   frcnn | mrcnn | yolo                   (default frcnn)
//   --dataset    kitti | visdrone                       (default kitti)
//   --governor   default | ztt | lotus | performance | powersave | random
//              | ondemand | conservative | fixed:<cpu>,<gpu>  (default lotus)
//   --scheduler  fifo | edf | edf_admit                 (default edf)
//   --arrival    periodic | poisson | burst | diurnal | attack (default poisson)
//   --streams N       number of client streams          (default 4)
//   --rate HZ         per-stream mean request rate      (default 0.25)
//   --slo MS          per-request deadline              (default 2x calibrated L)
//   --requests N      requests per stream               (default 150; 25 fast mode)
//   --burst N         requests per volley (burst/attack arrivals, default 8)
//   --pretrain N      unrecorded warm-up frames         (default 2500; agents only)
//   --seed S          experiment seed                   (default 42)
//   --format table | json                               (default table)
//   --csv DIR         write per-request ledgers + summary CSV into DIR
//   --chart           render temperature / end-to-end latency ASCII charts
//
// Unknown flags, unknown enum values and malformed numbers are rejected
// with a nonzero exit -- no silent fallbacks.

#include <cstdio>
#include <string>
#include <vector>

#include "cli_common.hpp"

using namespace lotus;

namespace {

const std::string kTool = "lotus_serve";

struct Options {
    std::string device = "orin";
    std::string detector = "frcnn";
    std::string dataset = "kitti";
    std::string governor = "lotus";
    std::string scheduler = "edf";
    std::string arrival = "poisson";
    std::size_t streams = 4;
    double rate_hz = 0.25;
    double slo_ms = 0.0; // 0 -> 2x calibrated constraint
    std::size_t requests = 0; // 0 -> fast-mode-aware default
    std::size_t burst = 8;
    std::size_t pretrain = 2500;
    std::uint64_t seed = 42;
    cli::OutputFormat format = cli::OutputFormat::table;
    std::string csv_dir;
    bool chart = false;
    bool list_scenarios = false;
    std::vector<std::string> scenarios;
    std::size_t jobs = 0;
    /// Ad-hoc-only flags the user explicitly passed, so scenario mode can
    /// reject them instead of silently ignoring an override.
    std::vector<std::string> adhoc_flags;
};

Options parse(int argc, char** argv) {
    Options opt;
    const auto need_value = [&](int& i) -> std::string {
        if (i + 1 >= argc) cli::usage_error(kTool, std::string("missing value for ") + argv[i]);
        return argv[++i];
    };
    const auto u64 = [&](const std::string& flag, const std::string& v) {
        return cli::parse_u64(kTool, flag, v);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const bool adhoc_only =
            flag == "--device" || flag == "--detector" || flag == "--dataset" ||
            flag == "--governor" || flag == "--scheduler" || flag == "--arrival" ||
            flag == "--streams" || flag == "--rate" || flag == "--slo" ||
            flag == "--requests" || flag == "--burst" || flag == "--pretrain";
        if (adhoc_only) opt.adhoc_flags.push_back(flag);
        if (flag == "--device") {
            opt.device = need_value(i);
        } else if (flag == "--detector") {
            opt.detector = need_value(i);
        } else if (flag == "--dataset") {
            opt.dataset = need_value(i);
        } else if (flag == "--governor") {
            opt.governor = need_value(i);
        } else if (flag == "--scheduler") {
            opt.scheduler = need_value(i);
        } else if (flag == "--arrival") {
            opt.arrival = need_value(i);
        } else if (flag == "--streams") {
            opt.streams = static_cast<std::size_t>(u64(flag, need_value(i)));
            if (opt.streams == 0) cli::usage_error(kTool, "--streams must be >= 1");
        } else if (flag == "--rate") {
            opt.rate_hz = cli::parse_positive_double(kTool, flag, need_value(i));
        } else if (flag == "--slo") {
            opt.slo_ms = cli::parse_positive_double(kTool, flag, need_value(i));
        } else if (flag == "--requests") {
            opt.requests = static_cast<std::size_t>(u64(flag, need_value(i)));
            if (opt.requests == 0) cli::usage_error(kTool, "--requests must be >= 1");
        } else if (flag == "--burst") {
            opt.burst = static_cast<std::size_t>(u64(flag, need_value(i)));
            if (opt.burst == 0) cli::usage_error(kTool, "--burst must be >= 1");
        } else if (flag == "--pretrain") {
            opt.pretrain = static_cast<std::size_t>(u64(flag, need_value(i)));
        } else if (flag == "--seed") {
            opt.seed = u64(flag, need_value(i));
        } else if (flag == "--format") {
            opt.format = cli::parse_format(kTool, need_value(i));
        } else if (flag == "--csv") {
            opt.csv_dir = need_value(i);
        } else if (flag == "--chart") {
            opt.chart = true;
        } else if (flag == "--list-scenarios") {
            opt.list_scenarios = true;
        } else if (flag == "--scenario") {
            opt.scenarios.push_back(need_value(i));
        } else if (flag == "--jobs") {
            opt.jobs = static_cast<std::size_t>(u64(flag, need_value(i)));
            if (opt.jobs == 0) cli::usage_error(kTool, "--jobs must be >= 1");
        } else if (flag == "--help" || flag == "-h") {
            std::printf("see the header comment of tools/lotus_serve.cpp for usage\n");
            std::exit(0);
        } else {
            cli::usage_error(kTool, "unknown flag " + flag);
        }
    }
    return opt;
}

cli::RenderOptions render_options(const Options& opt) {
    cli::RenderOptions r;
    r.format = opt.format;
    r.chart = opt.chart;
    r.csv_dir = opt.csv_dir;
    cli::reject_chart_with_json(kTool, r);
    return r;
}

int list_scenarios() {
    const auto& registry = harness::ScenarioRegistry::instance();
    const auto serving = registry.with_tag("serving");
    util::TextTable table({"scenario", "arms", "scheduler", "streams", "title"});
    for (const auto* s : serving) {
        table.add_row({s->name, std::to_string(s->arms.size()), s->serving->scheduler,
                       std::to_string(s->serving->streams.size()), s->title});
    }
    std::printf("%s", table.render("serving scenarios (" + std::to_string(serving.size()) +
                                   " of " + std::to_string(registry.all().size()) +
                                   " registry entries)")
                          .c_str());
    return 0;
}

int run_scenarios(const Options& opt) {
    if (!opt.adhoc_flags.empty()) {
        cli::usage_error(kTool, opt.adhoc_flags.front() +
                                    " only applies to ad-hoc mode; scenario definitions "
                                    "are fixed by the registry (tune "
                                    "--seed/--jobs/--format/--chart/--csv instead)");
    }
    const auto& registry = harness::ScenarioRegistry::instance();
    std::vector<const harness::Scenario*> batch;
    for (const auto& name : opt.scenarios) {
        const auto* s = registry.find(name);
        if (s == nullptr) {
            std::fprintf(stderr, "%s: unknown scenario '%s' (try --list-scenarios)\n",
                         kTool.c_str(), name.c_str());
            return 2;
        }
        if (!s->is_serving()) {
            std::fprintf(stderr,
                         "%s: scenario '%s' is a classic experiment, not a serving "
                         "scenario (run it with lotus_run)\n",
                         kTool.c_str(), name.c_str());
            return 2;
        }
        batch.push_back(s);
    }

    const auto render = render_options(opt); // validate before the long run
    const harness::ExperimentHarness harness({.jobs = opt.jobs, .seed = opt.seed});
    // Status goes to stderr so stdout is byte-identical at any --jobs count.
    std::fprintf(stderr, "%s: %zu scenario(s), %zu jobs, seed %llu\n", kTool.c_str(),
                 batch.size(), harness.config().jobs,
                 static_cast<unsigned long long>(harness.config().seed));
    cli::render_results(render, batch, harness.run(batch));
    return 0;
}

int run_adhoc(const Options& opt) {
    const auto render = render_options(opt); // validate before the long run
    const auto spec = cli::parse_device(kTool, opt.device);
    const auto kind = cli::parse_detector(kTool, opt.detector);
    const auto dataset = cli::parse_dataset(kTool, opt.dataset);

    serving::ArrivalSpec arrival;
    try {
        arrival.kind = serving::arrival_kind_from(opt.arrival);
    } catch (const std::invalid_argument& e) {
        cli::usage_error(kTool, e.what());
    }
    arrival.rate_hz = opt.rate_hz;
    arrival.burst = opt.burst;

    const double constraint =
        workload::latency_constraint_s(spec.name, kind, dataset);
    const double slo_s = opt.slo_ms > 0.0 ? opt.slo_ms / 1e3 : 2.0 * constraint;
    const std::size_t requests =
        opt.requests > 0 ? opt.requests : (harness::fast_mode() ? 25 : 150);

    harness::Scenario scenario(
        runtime::static_experiment(spec, kind, dataset, 1, 0, opt.seed));
    scenario.name = "cli_serve";
    scenario.title = "lotus_serve ad-hoc serving experiment";

    serving::ServingConfig cfg(spec);
    cfg.detector = kind;
    cfg.scheduler = opt.scheduler;
    cfg.pretrain_iterations = opt.pretrain;
    cfg.pretrain_constraint_s = constraint;
    // Stagger stream phases across one mean inter-arrival so N identical
    // streams do not fire in lockstep.
    for (std::size_t i = 0; i < opt.streams; ++i) {
        serving::StreamSpec stream;
        stream.name = "stream" + std::to_string(i);
        stream.dataset = dataset;
        stream.slo_s = slo_s;
        stream.requests = requests;
        stream.arrival = arrival;
        stream.arrival.phase_s =
            static_cast<double>(i) / (arrival.rate_hz * static_cast<double>(opt.streams));
        cfg.streams.push_back(std::move(stream));
    }
    try {
        (void)serving::make_scheduler(opt.scheduler);
    } catch (const std::invalid_argument& e) {
        cli::usage_error(kTool, e.what());
    }
    scenario.serving = std::move(cfg);
    scenario.arms.push_back(cli::make_governor_arm(kTool, opt.governor, spec));

    std::fprintf(stderr,
                 "%s: %s + %s + %s | %zu streams x %zu req @ %.2f Hz (%s), SLO %.0f ms, "
                 "scheduler %s, governor %s, seed %llu\n",
                 kTool.c_str(), spec.name.c_str(), detector::to_string(kind),
                 dataset.c_str(), opt.streams, requests, opt.rate_hz,
                 serving::to_string(arrival.kind), slo_s * 1e3, opt.scheduler.c_str(),
                 scenario.arms[0].name.c_str(),
                 static_cast<unsigned long long>(opt.seed));

    const harness::ExperimentHarness harness({.jobs = opt.jobs, .seed = opt.seed});
    cli::render_results(render, {&scenario}, harness.run(scenario));
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    const auto opt = parse(argc, argv);
    if (opt.list_scenarios) return list_scenarios();
    if (!opt.scenarios.empty()) return run_scenarios(opt);
    return run_adhoc(opt);
}
