// lotus_serve: multi-stream serving front end.
//
// Two modes, both driven by the ExperimentHarness over serving scenarios:
//
//  * Scenario mode -- run named serving scenarios from the ScenarioRegistry
//    (the serve_* catalog half). Parallel runs are byte-identical to serial
//    runs for the same seed, so `--jobs` is purely a throughput knob.
//
//      lotus_serve --list-scenarios
//      lotus_serve --scenario serve_saturation --jobs 4
//      lotus_serve --scenario serve_light --format json
//
//  * Ad-hoc mode -- build one serving experiment from flags: N identical
//    streams (phase-staggered so they do not arrive in lockstep) of the
//    given dataset/arrival process, one governor, one scheduler. With
//    --devices N the streams are served by a FLEET of N copies of the
//    device preset behind the chosen --router (one governor instance per
//    device) instead of a single device.
//
//      lotus_serve --streams 8 --arrival burst --scheduler edf --governor lotus
//      lotus_serve --streams 4 --arrival poisson --rate 0.5 --slo 800 --csv out/
//      lotus_serve --streams 12 --rate 1.2 --devices 4 --router thermal_aware
//
// Flags (all optional):
//   --list-scenarios  enumerate serving + fleet scenarios and exit
//   --scenario NAME   run a registry serving/fleet scenario (repeatable)
//   --jobs N          worker threads for scenario mode  (default: all cores)
//   --devices N       fleet size. Ad-hoc mode: serve on N copies of the
//                     device preset. Scenario mode: resize a FLEET
//                     scenario's pool (cycling its defined devices);
//                     rejected for non-fleet scenarios.
//   --router R        round_robin | least_queue | thermal_aware | lotus_fleet
//                     Ad-hoc mode: requires --devices. Scenario mode:
//                     overrides a fleet scenario's default routing policy
//                     (arms that pin their own router -- the router
//                     shoot-out scenarios -- keep their pin).
//   --device     orin | mi11                            (default orin)
//   --detector   frcnn | mrcnn | yolo                   (default frcnn)
//   --dataset    kitti | visdrone                       (default kitti)
//   --governor   default | ztt | lotus | performance | powersave | random
//              | ondemand | conservative | fixed:<cpu>,<gpu>  (default lotus)
//   --scheduler  fifo | edf | edf_admit                 (default edf)
//   --arrival    periodic | poisson | burst | diurnal | attack (default poisson)
//   --streams N       number of client streams          (default 4)
//   --rate HZ         per-stream mean request rate      (default 0.25)
//   --slo MS          per-request deadline              (default 2x calibrated L)
//   --requests N      requests per stream               (default 150; 25 fast mode)
//   --burst N         requests per volley (burst/attack arrivals, default 8)
//   --pretrain N      unrecorded warm-up frames         (default 2500; agents only)
//   --seed S          experiment seed                   (default 42)
//   --format table | json                               (default table)
//   --csv DIR         write per-request ledgers + summary CSV into DIR
//   --chart           render temperature / end-to-end latency ASCII charts
//   --profile         print the internal profiler's per-scenario report to
//                     stderr (regions + counters; see src/prof/)
//   --telemetry DIR   record sim-time telemetry per episode and write it
//                     under DIR/<scenario>/<arm>/: trace.json (Perfetto /
//                     chrome://tracing), events.jsonl, metrics.csv,
//                     breaches.jsonl, manifest.json, rollup.json,
//                     health.json (see src/telemetry/)
//   --telemetry-ring N  breaches.jsonl flight-recorder depth: last-N events
//                     per process snapshotted into each breach report
//                     (default 32; requires --telemetry, N >= 1)
//   --record-trace DIR  dump every episode's request timeline as a compact
//                     binary trace: DIR/<scenario>/<NN>_<arm>.ltrc
//                     (inspect with lotus_trace info/cat)
//   --replay-trace DIR  replay episodes from traces recorded under DIR
//                     (same layout); outputs are byte-identical to the
//                     generating run
//
// Without --csv/--chart the serving/fleet episodes run summary-only: the
// per-request ledger is never materialised (tables and JSON are
// byte-identical either way).
//
// Unknown flags, unknown enum values, malformed numbers and contradictory
// invocations (scenario mode combined with ad-hoc stream flags, --router
// without a fleet) are rejected with a nonzero exit -- no silent fallbacks.

#include <cstdio>
#include <string>
#include <vector>

#include "cli_common.hpp"

using namespace lotus;

namespace {

const std::string kTool = "lotus_serve";

struct Options {
    std::string device = "orin";
    std::string detector = "frcnn";
    std::string dataset = "kitti";
    std::string governor = "lotus";
    std::string scheduler = "edf";
    std::string arrival = "poisson";
    std::size_t streams = 4;
    double rate_hz = 0.25;
    double slo_ms = 0.0; // 0 -> 2x calibrated constraint
    std::size_t requests = 0; // 0 -> fast-mode-aware default
    std::size_t burst = 8;
    std::size_t pretrain = 2500;
    cli::SeedFlag seed;
    cli::OutputFormat format = cli::OutputFormat::table;
    std::string csv_dir;
    std::string telemetry_dir;
    std::size_t telemetry_ring = 0; // 0 -> recorder default
    bool chart = false;
    bool profile = false;
    bool list_scenarios = false;
    std::vector<std::string> scenarios;
    std::size_t jobs = 0;
    /// Fleet knobs: valid in ad-hoc mode (build a fleet of N preset copies)
    /// and in scenario mode (override a fleet scenario's pool size/router).
    std::size_t devices = 0; // 0 = not passed
    std::string router;      // "" = not passed
    /// Trace capture/replay directories (see HarnessConfig::trace_dir /
    /// replay_dir); empty = off.
    std::string record_trace_dir;
    std::string replay_trace_dir;
    /// Ad-hoc-only flags the user explicitly passed, so scenario mode can
    /// reject them instead of silently ignoring an override.
    std::vector<std::string> adhoc_flags;
};

Options parse(int argc, char** argv) {
    Options opt;
    const auto need_value = [&](int& i) -> std::string {
        if (i + 1 >= argc) cli::usage_error(kTool, std::string("missing value for ") + argv[i]);
        return argv[++i];
    };
    const auto u64 = [&](const std::string& flag, const std::string& v) {
        return cli::parse_u64(kTool, flag, v);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const bool adhoc_only =
            flag == "--device" || flag == "--detector" || flag == "--dataset" ||
            flag == "--governor" || flag == "--scheduler" || flag == "--arrival" ||
            flag == "--streams" || flag == "--rate" || flag == "--slo" ||
            flag == "--requests" || flag == "--burst" || flag == "--pretrain";
        if (adhoc_only) opt.adhoc_flags.push_back(flag);
        if (flag == "--device") {
            opt.device = need_value(i);
        } else if (flag == "--detector") {
            opt.detector = need_value(i);
        } else if (flag == "--dataset") {
            opt.dataset = need_value(i);
        } else if (flag == "--governor") {
            opt.governor = need_value(i);
        } else if (flag == "--scheduler") {
            opt.scheduler = need_value(i);
        } else if (flag == "--arrival") {
            opt.arrival = need_value(i);
        } else if (flag == "--streams") {
            opt.streams = static_cast<std::size_t>(u64(flag, need_value(i)));
            if (opt.streams == 0) cli::usage_error(kTool, "--streams must be >= 1");
        } else if (flag == "--rate") {
            opt.rate_hz = cli::parse_positive_double(kTool, flag, need_value(i));
        } else if (flag == "--slo") {
            opt.slo_ms = cli::parse_positive_double(kTool, flag, need_value(i));
        } else if (flag == "--requests") {
            opt.requests = static_cast<std::size_t>(u64(flag, need_value(i)));
            if (opt.requests == 0) cli::usage_error(kTool, "--requests must be >= 1");
        } else if (flag == "--burst") {
            opt.burst = static_cast<std::size_t>(u64(flag, need_value(i)));
            if (opt.burst == 0) cli::usage_error(kTool, "--burst must be >= 1");
        } else if (flag == "--pretrain") {
            opt.pretrain = static_cast<std::size_t>(u64(flag, need_value(i)));
        } else if (flag == "--seed") {
            cli::parse_seed(kTool, need_value(i), opt.seed);
        } else if (flag == "--format") {
            opt.format = cli::parse_format(kTool, need_value(i));
        } else if (flag == "--csv") {
            opt.csv_dir = need_value(i);
        } else if (flag == "--telemetry") {
            opt.telemetry_dir = need_value(i);
            if (opt.telemetry_dir.empty()) {
                cli::usage_error(kTool, "--telemetry wants a directory");
            }
        } else if (flag == "--telemetry-ring") {
            opt.telemetry_ring = static_cast<std::size_t>(u64(flag, need_value(i)));
            if (opt.telemetry_ring == 0) {
                cli::usage_error(kTool, "--telemetry-ring must be >= 1");
            }
        } else if (flag == "--chart") {
            opt.chart = true;
        } else if (flag == "--profile") {
            opt.profile = true;
        } else if (flag == "--list-scenarios") {
            opt.list_scenarios = true;
        } else if (flag == "--scenario") {
            opt.scenarios.push_back(need_value(i));
        } else if (flag == "--jobs") {
            opt.jobs = static_cast<std::size_t>(u64(flag, need_value(i)));
            if (opt.jobs == 0) cli::usage_error(kTool, "--jobs must be >= 1");
        } else if (flag == "--devices") {
            opt.devices = static_cast<std::size_t>(u64(flag, need_value(i)));
            if (opt.devices == 0) cli::usage_error(kTool, "--devices must be >= 1");
        } else if (flag == "--router") {
            opt.router = cli::parse_router(kTool, need_value(i));
        } else if (flag == "--record-trace") {
            opt.record_trace_dir = need_value(i);
            if (opt.record_trace_dir.empty()) {
                cli::usage_error(kTool, "--record-trace wants a directory");
            }
        } else if (flag == "--replay-trace") {
            opt.replay_trace_dir = need_value(i);
            if (opt.replay_trace_dir.empty()) {
                cli::usage_error(kTool, "--replay-trace wants a directory");
            }
        } else if (flag == "--help" || flag == "-h") {
            std::printf("see the header comment of tools/lotus_serve.cpp for usage\n");
            std::exit(0);
        } else {
            cli::usage_error(kTool, "unknown flag " + flag);
        }
    }
    if (opt.telemetry_ring > 0 && opt.telemetry_dir.empty()) {
        cli::usage_error(kTool, "--telemetry-ring requires --telemetry");
    }
    if (!opt.record_trace_dir.empty() && !opt.replay_trace_dir.empty() &&
        opt.record_trace_dir == opt.replay_trace_dir) {
        cli::usage_error(kTool, "--record-trace and --replay-trace must not point at "
                                "the same directory (capture would overwrite the "
                                "traces being replayed)");
    }
    return opt;
}

cli::RenderOptions render_options(const Options& opt) {
    cli::RenderOptions r;
    r.format = opt.format;
    r.chart = opt.chart;
    r.csv_dir = opt.csv_dir;
    r.profile = opt.profile;
    r.telemetry_dir = opt.telemetry_dir;
    r.telemetry_ring = opt.telemetry_ring;
    cli::reject_chart_with_json(kTool, r);
    return r;
}

int list_scenarios() {
    const auto& registry = harness::ScenarioRegistry::instance();
    const auto serving = registry.with_tag("serving");
    util::TextTable table({"scenario", "arms", "devices", "scheduler", "streams", "title"});
    for (const auto* s : serving) {
        const bool fleet = s->is_fleet();
        table.add_row({s->name, std::to_string(s->arms.size()),
                       fleet ? std::to_string(s->fleet->devices.size()) : "1",
                       fleet ? s->fleet->scheduler : s->serving->scheduler,
                       std::to_string(fleet ? s->fleet->streams.size()
                                            : s->serving->streams.size()),
                       s->title});
    }
    std::printf("%s", table.render("serving + fleet scenarios (" +
                                   std::to_string(serving.size()) + " of " +
                                   std::to_string(registry.all().size()) +
                                   " registry entries)")
                          .c_str());
    return 0;
}

int run_scenarios(const Options& opt) {
    if (!opt.adhoc_flags.empty()) {
        cli::usage_error(kTool, opt.adhoc_flags.front() +
                                    " only applies to ad-hoc mode; scenario definitions "
                                    "are fixed by the registry (tune "
                                    "--seed/--jobs/--format/--chart/--csv instead)");
    }
    const auto& registry = harness::ScenarioRegistry::instance();
    // --devices/--router act as fleet overrides: modified copies live here,
    // the batch points at either the registry entry or its override.
    std::vector<std::unique_ptr<harness::Scenario>> overridden;
    std::vector<const harness::Scenario*> batch;
    const bool fleet_override = opt.devices > 0 || !opt.router.empty();
    for (const auto& name : opt.scenarios) {
        const auto* s = registry.find(name);
        if (s == nullptr) {
            std::fprintf(stderr, "%s: unknown scenario '%s' (try --list-scenarios)\n",
                         kTool.c_str(), name.c_str());
            return 2;
        }
        if (!s->is_serving() && !s->is_fleet()) {
            std::fprintf(stderr,
                         "%s: scenario '%s' is a classic experiment, not a serving "
                         "scenario (run it with lotus_run)\n",
                         kTool.c_str(), name.c_str());
            return 2;
        }
        if (fleet_override && !s->is_fleet()) {
            cli::usage_error(kTool, "--devices/--router override a FLEET scenario's pool; '" +
                                        name + "' serves a single device");
        }
        if (fleet_override) {
            auto copy = std::make_unique<harness::Scenario>(*s);
            if (opt.devices > 0) fleet::resize_pool(*copy->fleet, opt.devices);
            if (!opt.router.empty()) copy->fleet->router = opt.router;
            batch.push_back(copy.get());
            overridden.push_back(std::move(copy));
        } else {
            batch.push_back(s);
        }
    }

    const auto render = render_options(opt); // validate before the long run
    cli::apply_profile_flag(render);
    auto harness_cfg = cli::harness_config(render, opt.jobs, opt.seed.value);
    harness_cfg.trace_dir = opt.record_trace_dir;
    harness_cfg.replay_dir = opt.replay_trace_dir;
    const harness::ExperimentHarness harness(harness_cfg);
    // Status goes to stderr so stdout is byte-identical at any --jobs count.
    std::fprintf(stderr, "%s: %zu scenario(s), %zu jobs, seed %llu\n", kTool.c_str(),
                 batch.size(), harness.config().jobs,
                 static_cast<unsigned long long>(harness.config().seed));
    cli::render_results(render, batch, harness.run(batch));
    return 0;
}

int run_adhoc(const Options& opt) {
    if (opt.devices == 0 && !opt.router.empty()) {
        cli::usage_error(kTool, "--router picks the fleet routing policy and requires "
                                "--devices N (a single device has nothing to route)");
    }
    const auto render = render_options(opt); // validate before the long run
    const auto spec = cli::parse_device(kTool, opt.device);
    const auto kind = cli::parse_detector(kTool, opt.detector);
    const auto dataset = cli::parse_dataset(kTool, opt.dataset);

    serving::ArrivalSpec arrival;
    try {
        arrival.kind = serving::arrival_kind_from(opt.arrival);
    } catch (const std::invalid_argument& e) {
        cli::usage_error(kTool, e.what());
    }
    arrival.rate_hz = opt.rate_hz;
    arrival.burst = opt.burst;

    const double constraint =
        workload::latency_constraint_s(spec.name, kind, dataset);
    const double slo_s = opt.slo_ms > 0.0 ? opt.slo_ms / 1e3 : 2.0 * constraint;
    const std::size_t requests =
        opt.requests > 0 ? opt.requests : (harness::fast_mode() ? 25 : 150);

    harness::Scenario scenario(
        runtime::static_experiment(spec, kind, dataset, 1, 0, opt.seed.value));
    scenario.name = opt.devices > 0 ? "cli_fleet" : "cli_serve";
    scenario.title = opt.devices > 0 ? "lotus_serve ad-hoc fleet experiment"
                                     : "lotus_serve ad-hoc serving experiment";

    try {
        (void)serving::make_scheduler(opt.scheduler);
    } catch (const std::invalid_argument& e) {
        cli::usage_error(kTool, e.what());
    }

    // Stagger stream phases across one mean inter-arrival so N identical
    // streams do not fire in lockstep.
    std::vector<serving::StreamSpec> streams;
    for (std::size_t i = 0; i < opt.streams; ++i) {
        serving::StreamSpec stream;
        stream.name = "stream" + std::to_string(i);
        stream.dataset = dataset;
        stream.slo_s = slo_s;
        stream.requests = requests;
        stream.arrival = arrival;
        stream.arrival.phase_s =
            static_cast<double>(i) / (arrival.rate_hz * static_cast<double>(opt.streams));
        streams.push_back(std::move(stream));
    }

    if (opt.devices > 0) {
        fleet::FleetConfig cfg;
        for (std::size_t d = 0; d < opt.devices; ++d) {
            cfg.devices.push_back(
                fleet::make_device(opt.device + std::to_string(d), spec));
        }
        cfg.detector = kind;
        cfg.scheduler = opt.scheduler;
        cfg.router = opt.router.empty() ? "round_robin" : opt.router;
        cfg.pretrain_iterations = opt.pretrain;
        cfg.pretrain_constraint_s = constraint;
        cfg.streams = std::move(streams);
        scenario.fleet = std::move(cfg);
    } else {
        serving::ServingConfig cfg(spec);
        cfg.detector = kind;
        cfg.scheduler = opt.scheduler;
        cfg.pretrain_iterations = opt.pretrain;
        cfg.pretrain_constraint_s = constraint;
        cfg.streams = std::move(streams);
        scenario.serving = std::move(cfg);
    }
    scenario.arms.push_back(cli::make_governor_arm(kTool, opt.governor, spec));

    std::fprintf(stderr,
                 "%s: %s + %s + %s | %zu streams x %zu req @ %.2f Hz (%s), SLO %.0f ms, "
                 "scheduler %s, governor %s, seed %llu",
                 kTool.c_str(), spec.name.c_str(), detector::to_string(kind),
                 dataset.c_str(), opt.streams, requests, opt.rate_hz,
                 serving::to_string(arrival.kind), slo_s * 1e3, opt.scheduler.c_str(),
                 scenario.arms[0].name.c_str(),
                 static_cast<unsigned long long>(opt.seed.value));
    if (opt.devices > 0) {
        std::fprintf(stderr, " | fleet of %zu, router %s", opt.devices,
                     scenario.fleet->router.c_str());
    }
    std::fprintf(stderr, "\n");

    cli::apply_profile_flag(render);
    auto harness_cfg = cli::harness_config(render, opt.jobs, opt.seed.value);
    harness_cfg.trace_dir = opt.record_trace_dir;
    harness_cfg.replay_dir = opt.replay_trace_dir;
    const harness::ExperimentHarness harness(harness_cfg);
    cli::render_results(render, {&scenario}, harness.run(scenario));
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    const auto opt = parse(argc, argv);
    if (opt.list_scenarios) return list_scenarios();
    if (!opt.scenarios.empty()) return run_scenarios(opt);
    return run_adhoc(opt);
}
