#!/usr/bin/env python3
"""run_clang_tidy: clang-tidy over the LOTUS tree, gracefully degrading.

Thin driver around clang-tidy for the repo's .clang-tidy config:

  * finds `clang-tidy` (or any versioned `clang-tidy-N`) on PATH; when none
    exists it exits 77 -- registered with CTest as SKIP_RETURN_CODE, so local
    builds without the clang toolchain skip instead of fail (the CI lint job
    installs clang-tidy and runs the real thing);
  * points clang-tidy at the build tree's compile_commands.json (the build
    exports it unconditionally via CMAKE_EXPORT_COMPILE_COMMANDS);
  * lints every *.cpp under the given roots in parallel, treating any
    diagnostic as failure (warnings-as-errors comes from .clang-tidy).

Usage:
  run_clang_tidy.py [--build-dir BUILD] [--jobs N] PATH...

Exit status: 0 clean, 1 diagnostics found, 2 usage/setup error,
77 clang-tidy unavailable (skip).
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import re
import shutil
import subprocess
import sys
from pathlib import Path


def find_clang_tidy() -> str | None:
    exe = shutil.which("clang-tidy")
    if exe:
        return exe
    # Versioned binaries (clang-tidy-18, ...): prefer the newest.
    candidates: list[tuple[int, str]] = []
    for directory in os.environ.get("PATH", "").split(os.pathsep):
        try:
            names = os.listdir(directory or ".")
        except OSError:
            continue
        for name in names:
            m = re.fullmatch(r"clang-tidy-(\d+)", name)
            if m:
                candidates.append((int(m.group(1)), os.path.join(directory, name)))
    if candidates:
        return max(candidates)[1]
    return None


def main() -> int:
    parser = argparse.ArgumentParser(prog="run_clang_tidy.py")
    parser.add_argument("paths", nargs="+", help="roots to lint (*.cpp recursively)")
    parser.add_argument("--build-dir", default="build",
                        help="build tree holding compile_commands.json")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args()

    tidy = find_clang_tidy()
    if tidy is None:
        print("run_clang_tidy: no clang-tidy on PATH; skipping (exit 77)")
        return 77

    compdb = Path(args.build_dir) / "compile_commands.json"
    if not compdb.exists():
        print(f"run_clang_tidy: {compdb} missing -- configure with CMake first "
              "(the build exports compile_commands.json unconditionally)",
              file=sys.stderr)
        return 2

    sources = sorted(
        p for root in args.paths for p in Path(root).rglob("*.cpp")
    )
    if not sources:
        print("run_clang_tidy: no sources found", file=sys.stderr)
        return 2

    print(f"run_clang_tidy: {tidy} over {len(sources)} files "
          f"({args.jobs} jobs, compdb {compdb})")

    def run_one(src: Path) -> tuple[Path, int, str]:
        proc = subprocess.run(
            [tidy, "-p", str(compdb.parent), "--quiet", str(src)],
            capture_output=True, text=True)
        return src, proc.returncode, (proc.stdout + proc.stderr).strip()

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for src, rc, output in pool.map(run_one, sources):
            if rc != 0 or "warning:" in output or "error:" in output:
                failures += 1
                print(f"--- {src}")
                print(output)
    verdict = "clean" if failures == 0 else f"{failures} file(s) with diagnostics"
    print(f"run_clang_tidy: {verdict}")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
