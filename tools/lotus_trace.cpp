// lotus_trace: record, inspect and transform .ltrc request traces.
//
// A .ltrc trace freezes a serving/fleet request timeline on disk (see
// src/trace/format.hpp for the layout). This tool is the trace-level
// counterpart of lotus_serve: it records traces from registry scenarios,
// prints and slices them, merges shards back together and synthesises
// arbitrarily long timelines directly from arrival specs -- without ever
// running the simulator.
//
// Verbs:
//   record --scenario NAME [--scenario ...] --out DIR [--seed S] [--jobs N]
//       Run the named serving/fleet scenarios (summary output suppressed)
//       and dump every episode's timeline to DIR/<scenario>/<NN>_<arm>.ltrc
//       -- the layout lotus_serve --replay-trace DIR replays from.
//   info FILE
//       Print header, stream table and time span.
//   cat FILE [--limit N]
//       Print records as CSV (id,stream,arrival_s,slo_s,frame_index,
//       resolution_scale,complexity,proposals,jitter).
//   slice IN OUT --ids A:B | --time A:B
//       Copy the id range [A,B) (O(1) seek) or the arrival-time window
//       [A,B) into a sub-trace. Slices keep the full stream table and the
//       original record ids.
//   merge OUT IN1 IN2 [IN3 ...]
//       K-way-merge sorted inputs sharing one stream table; ids renumber
//       in merge order, so merging the slices of a trace reconstructs it
//       byte-for-byte.
//   synth OUT --requests N [--streams K] [--arrival KIND] [--rate HZ]
//             [--burst N] [--slo MS] [--dataset D] [--seed S]
//       Stream the exact timeline a serving run over K phase-staggered
//       streams of N requests each would generate, straight to disk in
//       O(K) memory -- million-request traces in seconds.
//
// --seed applies only where a timeline is generated (record, synth); the
// file-transforming verbs reject it instead of silently ignoring it.
// Unknown flags/verbs and malformed values exit 2; I/O and format errors
// exit 1 with a message naming the file and the defect.

#include <cstdio>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "trace/record.hpp"

using namespace lotus;

namespace {

const std::string kTool = "lotus_trace";

struct Args {
    std::string verb;
    std::vector<std::string> positional;
    cli::SeedFlag seed;
    std::size_t jobs = 0;
    std::string out_dir;
    std::vector<std::string> scenarios;
    std::string ids_range;
    std::string time_range;
    std::uint64_t limit = 0; // 0 = unlimited
    std::size_t streams = 4;
    std::uint64_t requests = 0;
    std::string arrival = "poisson";
    double rate_hz = 0.25;
    std::size_t burst = 8;
    double slo_ms = 500.0;
    std::string dataset = "kitti";
};

Args parse(int argc, char** argv) {
    Args a;
    if (argc < 2) cli::usage_error(kTool, "missing verb (record|info|cat|slice|merge|synth)");
    a.verb = argv[1];
    const auto need_value = [&](int& i) -> std::string {
        if (i + 1 >= argc) cli::usage_error(kTool, std::string("missing value for ") + argv[i]);
        return argv[++i];
    };
    for (int i = 2; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--seed") {
            cli::parse_seed(kTool, need_value(i), a.seed);
        } else if (flag == "--jobs") {
            a.jobs = static_cast<std::size_t>(cli::parse_u64(kTool, flag, need_value(i)));
            if (a.jobs == 0) cli::usage_error(kTool, "--jobs must be >= 1");
        } else if (flag == "--out") {
            a.out_dir = need_value(i);
        } else if (flag == "--scenario") {
            a.scenarios.push_back(need_value(i));
        } else if (flag == "--ids") {
            a.ids_range = need_value(i);
        } else if (flag == "--time") {
            a.time_range = need_value(i);
        } else if (flag == "--limit") {
            a.limit = cli::parse_u64(kTool, flag, need_value(i));
        } else if (flag == "--streams") {
            a.streams = static_cast<std::size_t>(cli::parse_u64(kTool, flag, need_value(i)));
            if (a.streams == 0) cli::usage_error(kTool, "--streams must be >= 1");
        } else if (flag == "--requests") {
            a.requests = cli::parse_u64(kTool, flag, need_value(i));
            if (a.requests == 0) cli::usage_error(kTool, "--requests must be >= 1");
        } else if (flag == "--arrival") {
            a.arrival = need_value(i);
        } else if (flag == "--rate") {
            a.rate_hz = cli::parse_positive_double(kTool, flag, need_value(i));
        } else if (flag == "--burst") {
            a.burst = static_cast<std::size_t>(cli::parse_u64(kTool, flag, need_value(i)));
            if (a.burst == 0) cli::usage_error(kTool, "--burst must be >= 1");
        } else if (flag == "--slo") {
            a.slo_ms = cli::parse_positive_double(kTool, flag, need_value(i));
        } else if (flag == "--dataset") {
            a.dataset = cli::parse_dataset(kTool, need_value(i));
        } else if (flag == "--help" || flag == "-h") {
            std::printf("see the header comment of tools/lotus_trace.cpp for usage\n");
            std::exit(0);
        } else if (!flag.empty() && flag[0] == '-') {
            cli::usage_error(kTool, "unknown flag " + flag);
        } else {
            a.positional.push_back(flag);
        }
    }
    // Seed-conflict rule: verbs that only transform existing files have no
    // randomness for a seed to steer.
    if (a.seed.set && a.verb != "record" && a.verb != "synth") {
        cli::usage_error(kTool, "--seed only applies to the generating verbs "
                                "(record, synth); '" + a.verb +
                                "' is fully determined by its input trace");
    }
    return a;
}

/// Parse "A:B" into two numbers via the supplied element parser.
template <typename T, typename Parse>
std::pair<T, T> parse_range(const std::string& flag, const std::string& raw, Parse parse) {
    const auto colon = raw.find(':');
    if (colon == std::string::npos) {
        cli::usage_error(kTool, flag + " wants A:B, got '" + raw + "'");
    }
    return {parse(raw.substr(0, colon)), parse(raw.substr(colon + 1))};
}

int cmd_record(const Args& a) {
    if (a.scenarios.empty()) cli::usage_error(kTool, "record wants --scenario NAME");
    if (a.out_dir.empty()) cli::usage_error(kTool, "record wants --out DIR");
    const auto& registry = harness::ScenarioRegistry::instance();
    std::vector<const harness::Scenario*> batch;
    for (const auto& name : a.scenarios) {
        const auto* s = registry.find(name);
        if (s == nullptr) {
            std::fprintf(stderr, "%s: unknown scenario '%s'\n", kTool.c_str(),
                         name.c_str());
            return 2;
        }
        if (!s->is_serving() && !s->is_fleet()) {
            std::fprintf(stderr,
                         "%s: scenario '%s' is a classic experiment and has no request "
                         "timeline to record\n",
                         kTool.c_str(), name.c_str());
            return 2;
        }
        batch.push_back(s);
    }

    harness::HarnessConfig cfg;
    cfg.jobs = a.jobs;
    cfg.seed = a.seed.value;
    cfg.summary_only = true;
    cfg.trace_dir = a.out_dir;
    const harness::ExperimentHarness harness(cfg);
    (void)harness.run(batch);
    for (const auto* s : batch) {
        for (std::size_t arm = 0; arm < s->arms.size(); ++arm) {
            const auto path =
                harness::episode_trace_path(a.out_dir, s->name, arm, s->arms[arm].name);
            const trace::Reader reader(path);
            std::printf("%s: %llu records\n", path.c_str(),
                        static_cast<unsigned long long>(reader.info().record_count));
        }
    }
    return 0;
}

int cmd_info(const Args& a) {
    if (a.positional.size() != 1) cli::usage_error(kTool, "info wants exactly one FILE");
    trace::Reader reader(a.positional[0]);
    const auto& info = reader.info();
    std::printf("trace:          %s\n", a.positional[0].c_str());
    std::printf("format_version: %u\n", info.format_version);
    std::printf("schema_version: %u\n", info.schema_version);
    std::printf("build:          %s\n", info.build.c_str());
    std::printf("records:        %llu\n",
                static_cast<unsigned long long>(info.record_count));
    std::printf("streams:        %zu\n", info.streams.size());
    for (std::size_t s = 0; s < info.streams.size(); ++s) {
        const auto& si = info.streams[s];
        std::printf("  [%zu] %s dataset=%s slo_s=%.6g requests=%llu\n", s,
                    si.name.c_str(), si.dataset.c_str(), si.slo_s,
                    static_cast<unsigned long long>(si.requests));
    }
    if (info.record_count > 0) {
        // First and last record: two O(1) seeks, independent of trace size.
        trace::TraceRecord first, last;
        reader.seek(0);
        reader.next(first);
        reader.seek(info.record_count - 1);
        reader.next(last);
        std::printf("span_s:         [%.6f, %.6f]\n", first.arrival_s, last.arrival_s);
    }
    return 0;
}

int cmd_cat(const Args& a) {
    if (a.positional.size() != 1) cli::usage_error(kTool, "cat wants exactly one FILE");
    trace::Reader reader(a.positional[0]);
    std::printf(
        "id,stream,arrival_s,slo_s,frame_index,resolution_scale,complexity,"
        "proposals,jitter\n");
    trace::TraceRecord rec;
    std::uint64_t printed = 0;
    while (reader.next(rec)) {
        std::printf("%llu,%u,%.17g,%.17g,%llu,%.17g,%.17g,%d,%.17g\n",
                    static_cast<unsigned long long>(rec.id), rec.stream, rec.arrival_s,
                    rec.slo_s, static_cast<unsigned long long>(rec.frame_index),
                    rec.resolution_scale, rec.complexity, rec.proposals, rec.jitter);
        if (a.limit > 0 && ++printed >= a.limit) break;
    }
    return 0;
}

int cmd_slice(const Args& a) {
    if (a.positional.size() != 2) cli::usage_error(kTool, "slice wants IN OUT");
    if (a.ids_range.empty() == a.time_range.empty()) {
        cli::usage_error(kTool, "slice wants exactly one of --ids A:B / --time A:B");
    }
    trace::Reader in(a.positional[0]);
    if (!a.ids_range.empty()) {
        const auto [b, e] = parse_range<std::uint64_t>("--ids", a.ids_range,
                                                       [](const std::string& v) {
                                                           return cli::parse_u64(
                                                               kTool, "--ids", v);
                                                       });
        trace::slice_records(in, a.positional[1], b, e);
    } else {
        const auto [t0, t1] = parse_range<double>("--time", a.time_range,
                                                  [](const std::string& v) {
                                                      return cli::parse_positive_double(
                                                          kTool, "--time", v);
                                                  });
        trace::slice_time(in, a.positional[1], t0, t1);
    }
    const trace::Reader out(a.positional[1]);
    std::printf("%s: %llu records\n", a.positional[1].c_str(),
                static_cast<unsigned long long>(out.info().record_count));
    return 0;
}

int cmd_merge(const Args& a) {
    if (a.positional.size() < 3) cli::usage_error(kTool, "merge wants OUT IN1 IN2 [IN3 ...]");
    const std::vector<std::string> inputs(a.positional.begin() + 1, a.positional.end());
    trace::merge_traces(inputs, a.positional[0]);
    const trace::Reader out(a.positional[0]);
    std::printf("%s: %llu records from %zu inputs\n", a.positional[0].c_str(),
                static_cast<unsigned long long>(out.info().record_count), inputs.size());
    return 0;
}

int cmd_synth(const Args& a) {
    if (a.positional.size() != 1) cli::usage_error(kTool, "synth wants exactly one OUT file");
    if (a.requests == 0) cli::usage_error(kTool, "synth wants --requests N");
    serving::ArrivalSpec arrival;
    try {
        arrival.kind = serving::arrival_kind_from(a.arrival);
    } catch (const std::invalid_argument& e) {
        cli::usage_error(kTool, e.what());
    }
    arrival.rate_hz = a.rate_hz;
    arrival.burst = a.burst;

    // Same stream construction as lotus_serve's ad-hoc mode: N identical
    // streams, phases staggered across one mean inter-arrival.
    std::vector<serving::StreamSpec> streams;
    for (std::size_t i = 0; i < a.streams; ++i) {
        serving::StreamSpec stream;
        stream.name = "stream" + std::to_string(i);
        stream.dataset = a.dataset == "kitti" ? "KITTI" : a.dataset;
        stream.slo_s = a.slo_ms / 1e3;
        stream.requests = static_cast<std::size_t>(a.requests);
        stream.arrival = arrival;
        stream.arrival.phase_s =
            static_cast<double>(i) / (arrival.rate_hz * static_cast<double>(a.streams));
        streams.push_back(std::move(stream));
    }
    trace::synth_trace(a.positional[0], streams, a.seed.value);
    const trace::Reader out(a.positional[0]);
    std::printf("%s: %llu records (%zu streams x %llu requests)\n",
                a.positional[0].c_str(),
                static_cast<unsigned long long>(out.info().record_count), a.streams,
                static_cast<unsigned long long>(a.requests));
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    const auto args = parse(argc, argv);
    try {
        if (args.verb == "record") return cmd_record(args);
        if (args.verb == "info") return cmd_info(args);
        if (args.verb == "cat") return cmd_cat(args);
        if (args.verb == "slice") return cmd_slice(args);
        if (args.verb == "merge") return cmd_merge(args);
        if (args.verb == "synth") return cmd_synth(args);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", kTool.c_str(), e.what());
        return 1;
    }
    cli::usage_error(kTool, "unknown verb '" + args.verb +
                                "' (record|info|cat|slice|merge|synth)");
}
