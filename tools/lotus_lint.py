#!/usr/bin/env python3
"""lotus_lint: static determinism linter for the LOTUS tree.

The repo's core contract is that every harness run is a pure function of the
scenario: `--jobs N` must be byte-identical to serial, and a re-run with the
same seed must reproduce the same artifacts bit for bit.  CI enforces that
contract dynamically (diff smokes); this linter enforces it statically by
banning the constructs that break it at their source:

  rule              bans
  ----------------  ---------------------------------------------------------
  wall-clock        wall/monotonic clock reads (std::chrono::steady_clock,
                    system_clock, high_resolution_clock, time(nullptr),
                    gettimeofday, clock_gettime, clock()) anywhere outside
                    src/prof/ -- the profiler is the one layer that is
                    *supposed* to observe host time; everything else must run
                    on the simulated clock.
  banned-rng        nondeterministically seeded entropy: std::random_device,
                    std::rand/srand (also shared-state, concurrency-mt-unsafe).
  std-engine        <random> engines (mt19937, default_random_engine,
                    minstd_rand*, ranlux*, knuth_b): their streams are not
                    portable across standard libraries and cannot be forked;
                    use util::Rng (xoshiro256++) instead.
  unseeded-rng      default-constructed util::Rng locals/temporaries
                    (`Rng r;`, `Rng()`, `Rng{}`): every simulation RNG must be
                    seeded from the episode's derived seed, never from the
                    library default.  Member declarations (trailing-underscore
                    names, re-seeded in constructors) are exempt.
  unordered-iter    iteration over std::unordered_map/unordered_set (range-for
                    or explicit begin()/end()): iteration order is
                    implementation-defined and changes run to run, so anything
                    it feeds (JSON, CSV, reports, merge order) goes
                    nondeterministic.  Sort at the emission boundary or use
                    std::map/sorted vector.
  thread-id-order   std::this_thread::get_id / std::thread::id in ordering or
                    keys: thread identities depend on the scheduler, never on
                    the scenario.
  pointer-key-order std::map/std::set keyed by pointer and std::hash of a
                    pointer type: address order is ASLR roulette.

Escape hatches, in order of preference:

  * inline: append `// lotus-lint: allow(<rule>)` to the offending line (or
    place it alone on the line above) with a short justification;
  * allowlist: add `<path-glob>:<rule>` to tools/lotus_lint_allow.txt for
    sites that are legitimately exempt wholesale (kept deliberately short).

Usage:
  lotus_lint.py [--allowlist FILE] PATH...     lint *.cpp/*.hpp under PATHs
  lotus_lint.py --self-test FIXTURE_DIR        verify the rule fixtures:
      every fixtures file named violation_<rule>.cpp must trigger exactly
      <rule>; every allowed_<rule>.cpp must be clean.

Exit status: 0 clean, 1 violations found (or self-test mismatch), 2 usage.
"""

from __future__ import annotations

import argparse
import fnmatch
import re
import sys
from pathlib import Path

# --- rule definitions --------------------------------------------------------

# Each simple rule is (name, compiled pattern, human message).  File-scope
# exemptions (e.g. src/prof/ may read the host clock) are handled in lint().
SIMPLE_RULES = [
    (
        "wall-clock",
        re.compile(
            r"std::chrono::(?:steady_clock|system_clock|high_resolution_clock)"
            r"|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
            r"|\bgettimeofday\s*\("
            r"|\bclock_gettime\s*\("
            r"|\bstd::clock\s*\(\s*\)"
        ),
        "wall-clock read outside src/prof/; simulation and emission paths "
        "must use the simulated clock",
    ),
    (
        "banned-rng",
        re.compile(r"\bstd::random_device\b|\bstd::s?rand\s*\("),
        "nondeterministic entropy source; seed util::Rng from the episode's "
        "derived seed instead",
    ),
    (
        "std-engine",
        re.compile(
            r"\bstd::(?:mt19937(?:_64)?|default_random_engine|minstd_rand0?"
            r"|ranlux\w+|knuth_b)\b"
        ),
        "<random> engine streams are not portable or forkable; use util::Rng",
    ),
    (
        "thread-id-order",
        re.compile(r"std::this_thread::get_id\s*\(|std::thread::id\b"),
        "thread identity depends on the scheduler, never on the scenario; "
        "key/order by episode identity instead",
    ),
    (
        "pointer-key-order",
        re.compile(
            r"std::(?:map|set|multimap|multiset)\s*<\s*(?:const\s+)?"
            r"[\w:]+(?:\s*<[^<>]*>)?\s*\*"
            r"|std::hash\s*<\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*"
        ),
        "pointer-keyed ordering is address-space roulette; key by a stable "
        "id (name, index, request id)",
    ),
    (
        "unseeded-rng",
        # Local/temporary default construction. Members follow the trailing
        # underscore convention and are re-seeded in their constructors.
        re.compile(
            r"\b(?:util::)?Rng\s+\w*[^\s_;]\s*;"
            r"|(?<!:)\b(?:util::)?Rng\s*(?:\(\s*\)|\{\s*\})(?!\s*[=;])"
        ),
        "default-constructed util::Rng; seed it from the episode's derived "
        "seed (util::derive_seed)",
    ),
]

UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s*[&*]*\s*(\w+)"
)
RANGE_FOR = re.compile(r"\bfor\s*\([^;()]*:\s*([^)]+)\)")
ALLOW_INLINE = re.compile(r"//\s*lotus-lint:\s*allow\(([\w\-, ]+)\)")

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h", ".cxx"}

RULE_NAMES = [name for name, _, _ in SIMPLE_RULES] + ["unordered-iter"]


class Violation:
    def __init__(self, path: Path, line_no: int, rule: str, message: str, line: str):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message
        self.line = line.strip()

    def render(self) -> str:
        return (
            f"{self.path}:{self.line_no}: [{self.rule}] {self.message}\n"
            f"    {self.line}"
        )


def strip_strings_and_comments(line: str) -> str:
    """Blank out string/char literals and // comments so patterns inside them
    don't trip rules (the allow marker is parsed from the raw line)."""
    out = []
    i, n = 0, len(line)
    quote = None
    while i < n:
        c = line[i]
        if quote:
            if c == "\\":
                i += 2
                continue
            if c == quote:
                quote = None
            out.append(" ")
            i += 1
            continue
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is a comment
        out.append(c)
        i += 1
    return "".join(out)


def allowed_rules_for_line(lines: list[str], idx: int) -> set[str]:
    """Rules suppressed at line `idx` by an inline marker on that line or on
    an immediately preceding marker-only line."""
    allowed: set[str] = set()
    m = ALLOW_INLINE.search(lines[idx])
    if m:
        allowed.update(r.strip() for r in m.group(1).split(","))
    if idx > 0:
        prev = lines[idx - 1].strip()
        m = ALLOW_INLINE.fullmatch(prev) or (
            ALLOW_INLINE.search(prev) if prev.startswith("//") else None
        )
        if m:
            allowed.update(r.strip() for r in m.group(1).split(","))
    return allowed


def lint_file(path: Path, rel: str, allowlist: list[tuple[str, str]]) -> list[Violation]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        print(f"lotus_lint: cannot read {path}: {err}", file=sys.stderr)
        return []
    lines = text.splitlines()
    violations: list[Violation] = []

    def file_allowed(rule: str) -> bool:
        return any(
            fnmatch.fnmatch(rel, glob) and rule_name == rule
            for glob, rule_name in allowlist
        )

    # Names declared as unordered containers anywhere in this file (members,
    # locals, params); iteration over them is what the rule bans.
    unordered_names = set(UNORDERED_DECL.findall(text))

    in_block_comment = False
    for idx, raw in enumerate(lines):
        line = raw
        # Cheap block-comment tracking: ignore fully commented lines.
        if in_block_comment:
            if "*/" in line:
                in_block_comment = False
                line = line.split("*/", 1)[1]
            else:
                continue
        if "/*" in line and "*/" not in line:
            in_block_comment = True
            line = line.split("/*", 1)[0]
        code = strip_strings_and_comments(line)
        if not code.strip():
            continue
        inline_allowed = allowed_rules_for_line(lines, idx)

        for rule, pattern, message in SIMPLE_RULES:
            if rule == "wall-clock" and rel.startswith("src/prof/"):
                continue
            if pattern.search(code):
                if rule in inline_allowed or file_allowed(rule):
                    continue
                violations.append(Violation(path, idx + 1, rule, message, raw))

        # unordered-iter: range-for over a declared unordered name or over an
        # expression that is textually unordered; explicit iterator loops via
        # .begin()/.end()/.cbegin()/.cend() on declared names.
        hit = False
        m = RANGE_FOR.search(code)
        if m:
            expr = m.group(1).strip()
            expr_head = re.split(r"[.\->\[(]", expr, 1)[0].strip().lstrip("*&")
            if expr_head in unordered_names or "unordered_" in expr:
                hit = True
        if not hit and unordered_names:
            for name in unordered_names:
                # begin() starts an iteration; `.end()` alone is the
                # find()==end() lookup idiom and stays legal.
                if re.search(rf"\b{re.escape(name)}\s*\.\s*c?begin\s*\(", code):
                    hit = True
                    break
        if hit:
            rule = "unordered-iter"
            if rule not in inline_allowed and not file_allowed(rule):
                violations.append(
                    Violation(
                        path,
                        idx + 1,
                        rule,
                        "iteration over an unordered container feeds "
                        "nondeterministic order into downstream output; sort "
                        "at the emission boundary or use std::map",
                        raw,
                    )
                )
    return violations


def load_allowlist(path: Path) -> list[tuple[str, str]]:
    entries: list[tuple[str, str]] = []
    if not path.exists():
        return entries
    for raw in path.read_text(encoding="utf-8").splitlines():
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if ":" not in stripped:
            print(f"lotus_lint: malformed allowlist entry: {stripped}", file=sys.stderr)
            sys.exit(2)
        glob, rule = stripped.rsplit(":", 1)
        if rule not in RULE_NAMES:
            print(f"lotus_lint: allowlist names unknown rule: {stripped}", file=sys.stderr)
            sys.exit(2)
        entries.append((glob.strip(), rule.strip()))
    return entries


def iter_sources(roots: list[Path]) -> list[tuple[Path, Path]]:
    """(file, base) pairs; `base` is the root's parent so rel paths read
    `src/...` / `tools/...` regardless of the cwd the linter runs from."""
    pairs: list[tuple[Path, Path]] = []
    for root in roots:
        if root.is_file():
            pairs.append((root, root.parent.parent))
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                pairs.append((path, root.parent))
    return pairs


def run_lint(paths: list[str], allowlist_path: Path) -> int:
    allowlist = load_allowlist(allowlist_path)
    violations: list[Violation] = []
    files = 0
    for path, base in iter_sources([Path(p) for p in paths]):
        files += 1
        rel = path.relative_to(base).as_posix() if base in path.parents else path.as_posix()
        violations.extend(lint_file(path, rel, allowlist))
    for v in violations:
        print(v.render())
    summary = f"lotus_lint: {files} files, {len(violations)} violation(s)"
    print(summary, file=sys.stderr if violations else sys.stdout)
    return 1 if violations else 0


def run_self_test(fixture_dir: Path) -> int:
    """Fixture contract: violation_<rule>.cpp triggers exactly {<rule>};
    allowed_<rule>.cpp is clean (exercising the inline escape hatch)."""
    failures = 0
    covered: set[str] = set()
    fixtures = sorted(fixture_dir.glob("*.cpp"))
    if not fixtures:
        print(f"lotus_lint --self-test: no fixtures in {fixture_dir}", file=sys.stderr)
        return 1
    for fixture in fixtures:
        name = fixture.stem
        if name.startswith("violation_"):
            rule = name[len("violation_"):].replace("_", "-")
            expect_hit = True
        elif name.startswith("allowed_"):
            rule = name[len("allowed_"):].replace("_", "-")
            expect_hit = False
        else:
            print(f"  SKIP {fixture.name}: unrecognized fixture name")
            continue
        if rule not in RULE_NAMES:
            print(f"  FAIL {fixture.name}: names unknown rule '{rule}'")
            failures += 1
            continue
        hits = lint_file(fixture, f"fixtures/{fixture.name}", allowlist=[])
        hit_rules = {v.rule for v in hits}
        if expect_hit:
            covered.add(rule)
            if hit_rules != {rule}:
                print(
                    f"  FAIL {fixture.name}: expected exactly {{{rule}}}, "
                    f"got {sorted(hit_rules) or 'no hits'}"
                )
                failures += 1
            else:
                print(f"  ok   {fixture.name}: triggers {rule}")
        else:
            if hit_rules:
                print(f"  FAIL {fixture.name}: expected clean, got {sorted(hit_rules)}")
                failures += 1
            else:
                print(f"  ok   {fixture.name}: clean (escape hatch honored)")
    missing = set(RULE_NAMES) - covered
    if missing:
        print(f"  FAIL: rules without a violation fixture: {sorted(missing)}")
        failures += 1
    verdict = "PASS" if failures == 0 else f"FAIL ({failures})"
    print(f"lotus_lint --self-test: {verdict}")
    return 0 if failures == 0 else 1


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="lotus_lint.py",
        description="static determinism linter (see module docstring for rules)",
    )
    parser.add_argument("paths", nargs="*", help="directories/files to lint")
    parser.add_argument(
        "--allowlist",
        default=str(Path(__file__).parent / "lotus_lint_allow.txt"),
        help="allowlist file (default: tools/lotus_lint_allow.txt)",
    )
    parser.add_argument(
        "--self-test",
        metavar="FIXTURE_DIR",
        help="verify rule fixtures instead of linting a tree",
    )
    args = parser.parse_args()
    if args.self_test:
        return run_self_test(Path(args.self_test))
    if not args.paths:
        parser.error("no paths given (or use --self-test FIXTURE_DIR)")
    return run_lint(args.paths, Path(args.allowlist))


if __name__ == "__main__":
    sys.exit(main())
