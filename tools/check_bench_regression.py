#!/usr/bin/env python3
"""Fail CI when bench_overhead's perf trajectory regresses vs the baseline.

Usage:
    check_bench_regression.py CURRENT BASELINE [--threshold 0.10] [--absolute]

CURRENT is the BENCH_overhead.json a fresh bench_overhead run wrote;
BASELINE is the committed bench/BENCH_overhead.baseline.json.

Raw requests/sec depend on the host CPU, so by default the check compares
the hardware-normalized throughput ratio

    batched requests_per_sec / scalar requests_per_sec

of the serve_saturation cell (the end-to-end speedup the batched RL math
bought), failing when the current ratio falls more than --threshold (10%)
below the baseline's. It also re-asserts the correctness flags the bench
already gated on (bit-identical losses / summaries / JSON, telemetry
non-perturbation), so a stale or hand-edited trajectory file cannot slip
through.

Even on a pass, every numeric metric of every cell present in both files
is printed as a current-vs-baseline delta so CI logs show the trend, not
just the verdict.

--absolute additionally compares raw requests_per_sec per variant, for
same-machine trend tracking; do not enable it on shared CI runners.

Stdlib only; exit 0 on pass, 1 on regression, 2 on malformed input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"check_bench_regression: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def serve_cell(doc, path):
    try:
        return doc["cells"]["serve_saturation"]
    except (KeyError, TypeError):
        print(f"check_bench_regression: {path} has no serve_saturation cell",
              file=sys.stderr)
        sys.exit(2)


def throughput_ratio(doc, path):
    cell = serve_cell(doc, path)
    try:
        scalar = float(cell["scalar"]["requests_per_sec"])
        batched = float(cell["batched"]["requests_per_sec"])
    except (KeyError, TypeError, ValueError):
        print(f"check_bench_regression: {path} serve_saturation cell is malformed",
              file=sys.stderr)
        sys.exit(2)
    if scalar <= 0.0:
        print(f"check_bench_regression: {path} has non-positive scalar requests/sec",
              file=sys.stderr)
        sys.exit(2)
    return batched / scalar


def numeric_leaves(node, prefix=""):
    """Flatten a cell into sorted (dotted.path, float) pairs, skipping bools."""
    out = []
    if isinstance(node, dict):
        for key in sorted(node):
            out.extend(numeric_leaves(node[key], f"{prefix}.{key}" if prefix else key))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out.append((prefix, float(node)))
    return out


def print_cell_deltas(cur, base):
    """Print current-vs-baseline deltas for every shared numeric metric.

    Informational only (never fails the check): raw wall-clock and
    requests/sec depend on the host, but the per-cell trend is what a CI
    log reader wants when deciding whether a pass was comfortable or
    marginal.
    """
    cur_cells = cur.get("cells") if isinstance(cur.get("cells"), dict) else {}
    base_cells = base.get("cells") if isinstance(base.get("cells"), dict) else {}
    for cell in sorted(set(cur_cells) & set(base_cells)):
        cur_leaves = dict(numeric_leaves(cur_cells[cell]))
        base_leaves = dict(numeric_leaves(base_cells[cell]))
        shared = sorted(set(cur_leaves) & set(base_leaves))
        if not shared:
            continue
        print(f"cell {cell}:")
        for path in shared:
            c, b = cur_leaves[path], base_leaves[path]
            if b != 0.0:
                delta = f"{100.0 * (c - b) / abs(b):+.1f}%"
            else:
                delta = "n/a" if c == 0.0 else "new"
            print(f"  {path}: current {c:g}, baseline {b:g} ({delta})")


def main():
    parser = argparse.ArgumentParser(
        description="compare BENCH_overhead.json against the committed baseline")
    parser.add_argument("current", help="freshly produced BENCH_overhead.json")
    parser.add_argument("baseline", help="committed BENCH_overhead.baseline.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional regression (default 0.10)")
    parser.add_argument("--absolute", action="store_true",
                        help="also compare raw requests_per_sec (same-machine only)")
    args = parser.parse_args()

    cur = load(args.current)
    base = load(args.baseline)
    failures = []

    if cur.get("schema_version") != base.get("schema_version"):
        failures.append(f"schema_version mismatch: current {cur.get('schema_version')} "
                        f"vs baseline {base.get('schema_version')}")
    if cur.get("fast_mode") != base.get("fast_mode"):
        failures.append(f"mode mismatch: current fast_mode={cur.get('fast_mode')} vs "
                        f"baseline fast_mode={base.get('fast_mode')} "
                        "(compare like with like)")

    # Correctness flags: the bench exits non-zero when these fail, but a
    # stale artifact would still carry false here.
    flags = [
        ("train_step", "loss_bit_identical"),
        ("serve_saturation", "summaries_bit_identical"),
        ("summary_only_ledgers", "json_bit_identical"),
        ("telemetry_overhead", "json_bit_identical"),
        ("rollup_overhead", "json_bit_identical"),
        ("trace_replay", "json_bit_identical"),
    ]
    for cell, flag in flags:
        if cur.get("cells", {}).get(cell, {}).get(flag) is not True:
            failures.append(f"current {cell}.{flag} is not true")

    print_cell_deltas(cur, base)

    if not failures:
        r_cur = throughput_ratio(cur, args.current)
        r_base = throughput_ratio(base, args.baseline)
        floor = r_base * (1.0 - args.threshold)
        print(f"serve_saturation batched/scalar requests/sec ratio: "
              f"current {r_cur:.3f}, baseline {r_base:.3f}, floor {floor:.3f}")
        if r_cur < floor:
            failures.append(
                f"throughput ratio regressed {100.0 * (1.0 - r_cur / r_base):.1f}% "
                f"(> {100.0 * args.threshold:.0f}%): {r_cur:.3f} < {floor:.3f}")

        if args.absolute:
            for variant in ("scalar", "batched"):
                c = float(serve_cell(cur, args.current)[variant]["requests_per_sec"])
                b = float(serve_cell(base, args.baseline)[variant]["requests_per_sec"])
                print(f"serve_saturation {variant} requests/sec: "
                      f"current {c:.1f}, baseline {b:.1f}")
                if c < b * (1.0 - args.threshold):
                    failures.append(
                        f"{variant} requests/sec regressed "
                        f"{100.0 * (1.0 - c / b):.1f}%: {c:.1f} < "
                        f"{b * (1.0 - args.threshold):.1f}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("bench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
