#!/usr/bin/env python3
"""End-to-end gate for the lotus_sweep sharding and output contracts.

Runs a small cartesian sweep (2 pool sizes x 2 routers x 2 governors)
three ways -- unsharded, shard 1/2, shard 2/2 -- and asserts:

  1. concatenating the shards' sweep.csv files in order is byte-identical
     to the unsharded sweep.csv, and likewise for sweep.json -- the
     contract that makes sweeps trivially distributable;
  2. the unsharded sweep.json passes check_trace_json.py (cell-count
     identity, monotone ordering, summary reconciliation with sweep.csv);
  3. `lotus_inspect diff` on two identical sweep.json files exits 0 with
     zero deltas, and exits non-zero after a counter in a copy is
     perturbed -- the sweep regress gate actually bites.

Usage:
    sweep_shard_gate.py --sweep PATH/TO/lotus_sweep --inspect PATH/TO/lotus_inspect
        [--check PATH/TO/check_trace_json.py] [--workdir DIR]

Exit 0 when every property holds, 1 otherwise, 2 on setup failure.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

AXES = ["--devices", "1,2", "--router", "round_robin,least_queue",
        "--governor", "performance,powersave", "--rate", "0.5",
        "--requests", "10", "--pretrain", "0", "--streams", "2"]


def run_sweep(sweep, out_dir, shard=None):
    cmd = [sweep, "--out", out_dir] + AXES
    if shard:
        cmd += ["--shard", shard]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        print(f"sweep_shard_gate: {' '.join(cmd)} failed:\n{proc.stderr}",
              file=sys.stderr)
        sys.exit(2)


def read(path):
    with open(path, "rb") as fh:
        return fh.read()


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--sweep", required=True)
    ap.add_argument("--inspect", required=True)
    ap.add_argument("--check",
                    default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                         "check_trace_json.py"))
    ap.add_argument("--workdir")
    args = ap.parse_args()

    workdir = args.workdir or tempfile.mkdtemp(prefix="sweep_shard_gate_")
    full = os.path.join(workdir, "full")
    s1 = os.path.join(workdir, "s1")
    s2 = os.path.join(workdir, "s2")
    for d in (full, s1, s2):
        shutil.rmtree(d, ignore_errors=True)
    run_sweep(args.sweep, full)
    run_sweep(args.sweep, s1, shard="1/2")
    run_sweep(args.sweep, s2, shard="2/2")

    failures = []

    # Property 1: shard concatenation is byte-identical to the full run.
    for name in ("sweep.csv", "sweep.json"):
        whole = read(os.path.join(full, name))
        glued = read(os.path.join(s1, name)) + read(os.path.join(s2, name))
        if whole != glued:
            failures.append(f"shard 1/2 + 2/2 {name} differs from the unsharded file")

    # Property 2: the sweep.json validator passes.
    proc = subprocess.run([sys.executable, args.check,
                           os.path.join(full, "sweep.json")],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        failures.append(f"check_trace_json.py rejected sweep.json:\n{proc.stdout}"
                        f"{proc.stderr}")

    # Property 3a: identical sweeps diff clean.
    proc = subprocess.run([args.inspect, "diff", os.path.join(full, "sweep.json"),
                           os.path.join(full, "sweep.json")],
                          capture_output=True, text=True)
    if proc.returncode != 0 or "0 regressions, 0 improvements" not in proc.stdout:
        failures.append(f"self-diff not clean (rc {proc.returncode}):\n{proc.stdout}")

    # Property 3b: a perturbed copy trips the gate.
    perturbed = os.path.join(workdir, "perturbed.json")
    with open(os.path.join(full, "sweep.json"), "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for i, line in enumerate(lines):
        doc = json.loads(line)
        if "cell" in doc:
            doc["summary"]["missed"] += 5
            lines[i] = json.dumps(doc)
            break
    with open(perturbed, "w", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")
    proc = subprocess.run([args.inspect, "diff", os.path.join(full, "sweep.json"),
                           perturbed], capture_output=True, text=True)
    if proc.returncode == 0:
        failures.append("perturbed sweep.json did not trip the diff gate")
    elif "REGRESSION" not in proc.stdout:
        failures.append(f"perturbed diff exited {proc.returncode} without naming a "
                        f"regression:\n{proc.stdout}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print(f"sweep_shard_gate: all properties hold ({workdir})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
