#pragma once
// Shared front-end glue for the CLI tools (lotus_run, lotus_serve).
//
// Both tools speak the same dialect -- strict flag validation (unknown
// flags, enum values and malformed numbers exit 2, no silent fallbacks),
// the same device/detector/dataset/governor vocabularies -- so the parsing
// and arm construction live here once.

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "lotus_repro.hpp"
#include "prof/profiler.hpp"

namespace lotus::cli {

[[noreturn]] inline void usage_error(const std::string& tool, const std::string& message) {
    std::fprintf(stderr, "%s: %s\n(see the header of tools/%s.cpp for usage)\n",
                 tool.c_str(), message.c_str(), tool.c_str());
    std::exit(2);
}

inline std::uint64_t parse_u64(const std::string& tool, const std::string& flag,
                               const std::string& value) {
    std::uint64_t out = 0;
    const auto* first = value.data();
    const auto* last = value.data() + value.size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    if (value.empty() || ec != std::errc{} || ptr != last) {
        usage_error(tool, flag + " wants a non-negative integer, got '" + value + "'");
    }
    return out;
}

/// `--seed <u64>` override state shared by every tool. Tracking whether
/// the flag was given (not just its value) lets verbs whose output is
/// fully determined by an input file -- lotus_trace info/cat/slice/merge
/// -- reject a seed that could not possibly apply, instead of silently
/// ignoring it.
struct SeedFlag {
    std::uint64_t value = 42;
    bool set = false;
};

/// Strictly parse a --seed value into `seed`: non-negative integer only
/// (no sign, no decimals, no trailing junk), at most once per invocation.
inline void parse_seed(const std::string& tool, const std::string& raw, SeedFlag& seed) {
    if (seed.set) usage_error(tool, "--seed given more than once");
    seed.value = parse_u64(tool, "--seed", raw);
    seed.set = true;
}

inline double parse_positive_double(const std::string& tool, const std::string& flag,
                                    const std::string& value) {
    char* end = nullptr;
    const double out = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size() || !(out > 0.0)) {
        usage_error(tool, flag + " wants a positive number, got '" + value + "'");
    }
    return out;
}

inline platform::DeviceSpec parse_device(const std::string& tool, const std::string& s) {
    if (s == "orin" || s == "jetson") return platform::orin_nano_spec();
    if (s == "mi11" || s == "mi-11-lite") return platform::mi11_lite_spec();
    usage_error(tool, "unknown device " + s);
}

inline detector::DetectorKind parse_detector(const std::string& tool, const std::string& s) {
    if (s == "frcnn" || s == "faster_rcnn") return detector::DetectorKind::faster_rcnn;
    if (s == "mrcnn" || s == "mask_rcnn") return detector::DetectorKind::mask_rcnn;
    if (s == "yolo" || s == "yolov5") return detector::DetectorKind::yolo_v5;
    usage_error(tool, "unknown detector " + s);
}

/// Canonical dataset name ("KITTI" / "VisDrone2019").
inline std::string parse_dataset(const std::string& tool, const std::string& s) {
    if (s == "kitti" || s == "KITTI") return "KITTI";
    if (s == "visdrone" || s == "VisDrone2019") return "VisDrone2019";
    usage_error(tool, "unknown dataset " + s);
}

/// Validated fleet routing-policy name (round_robin | least_queue |
/// thermal_aware | lotus_fleet, plus the rr/jsq shorthands).
inline std::string parse_router(const std::string& tool, const std::string& s) {
    try {
        (void)fleet::make_router(s);
    } catch (const std::invalid_argument& e) {
        usage_error(tool, e.what());
    }
    return s;
}

/// Output format for result rendering.
enum class OutputFormat { table, json };

inline OutputFormat parse_format(const std::string& tool, const std::string& s) {
    if (s == "table") return OutputFormat::table;
    if (s == "json") return OutputFormat::json;
    usage_error(tool, "unknown --format " + s + " (table|json)");
}

/// What run_scenarios-style rendering needs from either tool's options.
struct RenderOptions {
    OutputFormat format = OutputFormat::table;
    bool chart = false;
    /// CSV output directory; empty disables the CSV sink.
    std::string csv_dir;
    /// Enable the internal profiler and print its per-scenario report to
    /// stderr (see src/prof/).
    bool profile = false;
    /// Sim-time telemetry output directory (trace.json / events.jsonl /
    /// metrics.csv / breaches.jsonl per episode, see src/telemetry/); empty
    /// disables recording entirely.
    std::string telemetry_dir;
    /// breaches.jsonl flight-recorder depth (events per process kept for
    /// breach snapshots); 0 keeps the RecorderOptions default. Only
    /// consulted when telemetry is on.
    std::size_t telemetry_ring = 0;

    /// Serving/fleet episodes can skip materialising per-request ledger rows
    /// (bit-identical summaries, less allocation) exactly when no sink needs
    /// the rows: charts read per-request columns, CSV dumps the ledger.
    [[nodiscard]] bool summary_only() const noexcept {
        return !chart && csv_dir.empty();
    }
};

/// Harness config for scenario execution under these render options: the
/// summary-only fast path engages automatically when no row-consuming sink
/// is attached.
inline harness::HarnessConfig harness_config(const RenderOptions& opt, std::size_t jobs,
                                             std::uint64_t seed) {
    harness::HarnessConfig cfg;
    cfg.jobs = jobs;
    cfg.seed = seed;
    cfg.summary_only = opt.summary_only();
    cfg.telemetry = !opt.telemetry_dir.empty();
    if (opt.telemetry_ring > 0) cfg.telemetry_options.ring_capacity = opt.telemetry_ring;
    return cfg;
}

/// `--format json` promises machine-readable stdout; ASCII charts would
/// corrupt it (CSV announcements already go to stderr).
inline void reject_chart_with_json(const std::string& tool, const RenderOptions& opt) {
    if (opt.chart && opt.format == OutputFormat::json) {
        usage_error(tool, "--chart writes ASCII to stdout and cannot be combined "
                          "with --format json");
    }
}

/// Turn the profiler's runtime timer gate on when --profile was passed
/// (call before the run so episodes are sampled). Harmless no-op in
/// profiling-OFF builds; the ProfileSink then prints the compiled-out
/// notice.
inline void apply_profile_flag(const RenderOptions& opt) {
    if (opt.profile) prof::set_enabled(true);
}

/// Slice a harness batch result back per scenario and feed each slice
/// through the sinks the options select (chart, table-or-json, CSV).
inline void render_results(const RenderOptions& opt,
                           const std::vector<const harness::Scenario*>& batch,
                           std::vector<harness::EpisodeResult> results) {
    std::vector<std::unique_ptr<harness::ResultSink>> sinks;
    if (opt.chart) sinks.push_back(std::make_unique<harness::AsciiFigureSink>());
    if (opt.format == OutputFormat::json) {
        sinks.push_back(std::make_unique<harness::JsonSink>());
    } else {
        sinks.push_back(std::make_unique<harness::SummaryTableSink>());
    }
    if (!opt.csv_dir.empty()) {
        sinks.push_back(std::make_unique<harness::CsvSink>(opt.csv_dir));
    }
    if (!opt.telemetry_dir.empty()) {
        sinks.push_back(std::make_unique<harness::TelemetrySink>(opt.telemetry_dir));
    }
    if (opt.profile) sinks.push_back(std::make_unique<harness::ProfileSink>());

    std::size_t cursor = 0;
    for (const auto* s : batch) {
        const std::vector<harness::EpisodeResult> slice(
            std::make_move_iterator(results.begin() + static_cast<std::ptrdiff_t>(cursor)),
            std::make_move_iterator(results.begin() +
                                    static_cast<std::ptrdiff_t>(cursor + s->arms.size())));
        cursor += s->arms.size();
        for (const auto& sink : sinks) sink->consume(*s, slice);
        if (opt.format == OutputFormat::table) std::printf("\n");
    }
}

/// The full governor vocabulary both tools accept:
///   default | ztt | lotus | performance | powersave | random | ondemand
/// | conservative | fixed:<cpu>,<gpu>
inline harness::ArmSpec make_governor_arm(const std::string& tool, const std::string& g,
                                          const platform::DeviceSpec& spec) {
    if (g == "default") return harness::default_arm(spec);
    if (g == "ztt") return harness::ztt_arm(spec);
    if (g == "lotus") return harness::lotus_arm(spec);
    if (g == "performance") return harness::performance_arm();
    if (g == "powersave") return harness::powersave_arm();

    const auto simple = [&g](auto factory) {
        harness::ArmSpec arm;
        arm.name = g;
        arm.make = std::move(factory);
        return arm;
    };
    if (g == "ondemand" || g == "conservative") {
        return simple([g](std::uint64_t) -> std::unique_ptr<governors::Governor> {
            return std::make_unique<governors::KernelGovernor>(
                g + "+simple_ondemand",
                g == "ondemand" ? governors::CpuPolicyKind::ondemand
                                : governors::CpuPolicyKind::conservative,
                governors::SimpleOndemandParams{});
        });
    }
    if (g == "random") {
        return simple([](std::uint64_t seed) -> std::unique_ptr<governors::Governor> {
            return std::make_unique<governors::RandomGovernor>(seed);
        });
    }
    if (g.rfind("fixed:", 0) == 0) {
        const auto spec_str = g.substr(6);
        const auto comma = spec_str.find(',');
        if (comma == std::string::npos) {
            usage_error(tool, "malformed --governor '" + g + "': fixed wants fixed:<cpu>,<gpu>");
        }
        const auto cpu = static_cast<std::size_t>(
            parse_u64(tool, "--governor fixed:<cpu>", spec_str.substr(0, comma)));
        const auto gpu = static_cast<std::size_t>(
            parse_u64(tool, "--governor fixed:<gpu>", spec_str.substr(comma + 1)));
        if (cpu >= spec.cpu.opp.num_levels() || gpu >= spec.gpu.opp.num_levels()) {
            usage_error(tool, "fixed:" + std::to_string(cpu) + "," + std::to_string(gpu) +
                                  " is outside the device's ladder (" +
                                  std::to_string(spec.cpu.opp.num_levels()) + " CPU x " +
                                  std::to_string(spec.gpu.opp.num_levels()) + " GPU levels)");
        }
        return harness::fixed_arm(cpu, gpu);
    }
    usage_error(tool, "unknown governor " + g);
}

} // namespace lotus::cli
