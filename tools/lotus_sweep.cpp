// lotus_sweep: cartesian parameter sweeps over the fleet serving stack.
//
// Expands pool size x router x scheduler x governor x arrival rate (or x
// trace file) into one harness episode per cell, runs every cell on the
// existing parallel worker pool, and writes one row per cell:
//
//   DIR/sweep.csv   -- flat table for spreadsheets / plotting
//   DIR/sweep.json  -- JSON Lines: one meta line, then one cell object per
//                      line (schema-versioned; `lotus_inspect diff
//                      a/sweep.json b/sweep.json` regress-gates two sweeps)
//
// Every cell is seeded by util::derive_seed(sweep seed, cell name, 0) -- a
// pure function of the cell's identity, never of which shard or worker ran
// it. `--shard k/N` runs the k-th contiguous block of the cell list and
// omits the CSV header / JSON meta line for k > 1, so concatenating the N
// shards' outputs in order is byte-identical to the unsharded run:
//
//   lotus_sweep --out full ...
//   lotus_sweep --out s1 --shard 1/2 ...   # same axes
//   lotus_sweep --out s2 --shard 2/2 ...
//   cat s1/sweep.csv s2/sweep.csv | cmp - full/sweep.csv
//
// Flags:
//   --out DIR          output directory (required)
//   --devices LIST     pool sizes, e.g. 1,2,4          (default 1,2)
//   --router LIST      routing policies                (default round_robin)
//   --scheduler LIST   queue policies                  (default edf)
//   --governor LIST    governor vocabulary of lotus_serve (default performance)
//   --rate LIST        per-stream mean rates [Hz]      (default 0.25)
//   --trace LIST       replay .ltrc traces instead of generating arrivals
//                      (mutually exclusive with --rate; streams come from
//                      each trace's stream table)
//   --device PRESET    orin | mi11                     (default orin)
//   --detector K       frcnn | mrcnn | yolo            (default frcnn)
//   --dataset D        kitti | visdrone                (default kitti)
//   --arrival KIND     periodic|poisson|burst|diurnal|attack (default poisson)
//   --streams N        streams per cell                (default 4)
//   --requests N       requests per stream             (default 150; 25 fast)
//   --slo MS           per-request deadline            (default 2x calibrated)
//   --burst N          requests per volley             (default 8)
//   --pretrain N       warm-up frames (learning governors; default 2500)
//   --seed S           sweep seed                      (default 42)
//   --jobs N           worker threads                  (default: all cores)
//   --shard k/N        run the k-th of N contiguous cell blocks
//
// Unknown flags, malformed values, empty axes and out-of-range shards are
// rejected with exit 2.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "telemetry/recorder.hpp"
#include "trace/record.hpp"
#include "util/build_info.hpp"
#include "util/csv.hpp"

using namespace lotus;

namespace {

const std::string kTool = "lotus_sweep";

struct Options {
    std::string out_dir;
    std::vector<std::string> devices{"1", "2"};
    std::vector<std::string> routers{"round_robin"};
    std::vector<std::string> schedulers{"edf"};
    std::vector<std::string> governors{"performance"};
    std::vector<std::string> rates{"0.25"};
    std::vector<std::string> traces;
    std::string device = "orin";
    std::string detector = "frcnn";
    std::string dataset = "kitti";
    std::string arrival = "poisson";
    std::size_t streams = 4;
    std::size_t requests = 0; // 0 -> fast-mode-aware default
    double slo_ms = 0.0;      // 0 -> 2x calibrated constraint
    std::size_t burst = 8;
    std::size_t pretrain = 2500;
    cli::SeedFlag seed;
    std::size_t jobs = 0;
    std::size_t shard_k = 1;
    std::size_t shard_n = 1;
};

std::vector<std::string> split_list(const std::string& flag, const std::string& raw) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= raw.size()) {
        const auto comma = raw.find(',', start);
        const auto end = comma == std::string::npos ? raw.size() : comma;
        const auto item = raw.substr(start, end - start);
        if (item.empty()) cli::usage_error(kTool, flag + " has an empty list element");
        out.push_back(item);
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    if (out.empty()) cli::usage_error(kTool, flag + " wants a non-empty list");
    return out;
}

Options parse(int argc, char** argv) {
    Options opt;
    bool rates_given = false;
    const auto need_value = [&](int& i) -> std::string {
        if (i + 1 >= argc) cli::usage_error(kTool, std::string("missing value for ") + argv[i]);
        return argv[++i];
    };
    const auto u64 = [&](const std::string& flag, const std::string& v) {
        return cli::parse_u64(kTool, flag, v);
    };
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--out") {
            opt.out_dir = need_value(i);
        } else if (flag == "--devices") {
            opt.devices = split_list(flag, need_value(i));
        } else if (flag == "--router") {
            opt.routers = split_list(flag, need_value(i));
        } else if (flag == "--scheduler") {
            opt.schedulers = split_list(flag, need_value(i));
        } else if (flag == "--governor") {
            opt.governors = split_list(flag, need_value(i));
        } else if (flag == "--rate") {
            opt.rates = split_list(flag, need_value(i));
            rates_given = true;
        } else if (flag == "--trace") {
            opt.traces = split_list(flag, need_value(i));
        } else if (flag == "--device") {
            opt.device = need_value(i);
        } else if (flag == "--detector") {
            opt.detector = need_value(i);
        } else if (flag == "--dataset") {
            opt.dataset = need_value(i);
        } else if (flag == "--arrival") {
            opt.arrival = need_value(i);
        } else if (flag == "--streams") {
            opt.streams = static_cast<std::size_t>(u64(flag, need_value(i)));
            if (opt.streams == 0) cli::usage_error(kTool, "--streams must be >= 1");
        } else if (flag == "--requests") {
            opt.requests = static_cast<std::size_t>(u64(flag, need_value(i)));
            if (opt.requests == 0) cli::usage_error(kTool, "--requests must be >= 1");
        } else if (flag == "--slo") {
            opt.slo_ms = cli::parse_positive_double(kTool, flag, need_value(i));
        } else if (flag == "--burst") {
            opt.burst = static_cast<std::size_t>(u64(flag, need_value(i)));
            if (opt.burst == 0) cli::usage_error(kTool, "--burst must be >= 1");
        } else if (flag == "--pretrain") {
            opt.pretrain = static_cast<std::size_t>(u64(flag, need_value(i)));
        } else if (flag == "--seed") {
            cli::parse_seed(kTool, need_value(i), opt.seed);
        } else if (flag == "--jobs") {
            opt.jobs = static_cast<std::size_t>(u64(flag, need_value(i)));
            if (opt.jobs == 0) cli::usage_error(kTool, "--jobs must be >= 1");
        } else if (flag == "--shard") {
            const auto raw = need_value(i);
            const auto slash = raw.find('/');
            if (slash == std::string::npos) {
                cli::usage_error(kTool, "--shard wants k/N, got '" + raw + "'");
            }
            opt.shard_k = static_cast<std::size_t>(
                u64("--shard", raw.substr(0, slash)));
            opt.shard_n = static_cast<std::size_t>(
                u64("--shard", raw.substr(slash + 1)));
            if (opt.shard_n == 0 || opt.shard_k == 0 || opt.shard_k > opt.shard_n) {
                cli::usage_error(kTool, "--shard wants 1 <= k <= N, got '" + raw + "'");
            }
        } else if (flag == "--help" || flag == "-h") {
            std::printf("see the header comment of tools/lotus_sweep.cpp for usage\n");
            std::exit(0);
        } else {
            cli::usage_error(kTool, "unknown flag " + flag);
        }
    }
    if (opt.out_dir.empty()) cli::usage_error(kTool, "--out DIR is required");
    if (!opt.traces.empty() && rates_given) {
        cli::usage_error(kTool, "--rate and --trace are alternative arrival axes; "
                                "pass one of them");
    }
    return opt;
}

/// One cartesian cell: the axis values plus the scenario built from them.
struct Cell {
    std::size_t index = 0;
    std::string name;
    std::size_t devices = 0;
    std::string router;
    std::string scheduler;
    std::string governor;
    /// The arrival-axis token: the rate string, or the trace file stem.
    std::string arrival;
    std::unique_ptr<harness::Scenario> scenario;
};

std::string json_escape(const std::string& s) { return telemetry::jstr(s); }

std::vector<Cell> build_cells(const Options& opt) {
    const auto spec = cli::parse_device(kTool, opt.device);
    const auto kind = cli::parse_detector(kTool, opt.detector);
    const auto dataset = cli::parse_dataset(kTool, opt.dataset);
    serving::ArrivalSpec arrival;
    try {
        arrival.kind = serving::arrival_kind_from(opt.arrival);
    } catch (const std::invalid_argument& e) {
        cli::usage_error(kTool, e.what());
    }
    arrival.burst = opt.burst;
    const double constraint = workload::latency_constraint_s(spec.name, kind, dataset);
    const double slo_s = opt.slo_ms > 0.0 ? opt.slo_ms / 1e3 : 2.0 * constraint;
    const std::size_t requests =
        opt.requests > 0 ? opt.requests : (harness::fast_mode() ? 25 : 150);

    // Validate schedulers/routers once, up front, so a typo fails before
    // any cell runs.
    for (const auto& s : opt.schedulers) {
        try {
            (void)serving::make_scheduler(s);
        } catch (const std::invalid_argument& e) {
            cli::usage_error(kTool, e.what());
        }
    }
    for (const auto& r : opt.routers) (void)cli::parse_router(kTool, r);

    const bool trace_axis = !opt.traces.empty();
    const auto& arrival_axis = trace_axis ? opt.traces : opt.rates;

    std::vector<Cell> cells;
    std::size_t index = 0;
    for (const auto& devices_token : opt.devices) {
        const auto pool = static_cast<std::size_t>(
            cli::parse_u64(kTool, "--devices", devices_token));
        if (pool == 0) cli::usage_error(kTool, "--devices entries must be >= 1");
        for (const auto& router : opt.routers) {
            for (const auto& scheduler : opt.schedulers) {
                for (const auto& governor : opt.governors) {
                    for (const auto& arrival_token : arrival_axis) {
                        Cell cell;
                        cell.index = index++;
                        cell.devices = pool;
                        cell.router = router;
                        cell.scheduler = scheduler;
                        cell.governor = governor;
                        cell.arrival =
                            trace_axis
                                ? std::filesystem::path(arrival_token).stem().string()
                                : arrival_token;
                        cell.name = "sweep/d" + devices_token + "/" + router + "/" +
                                    scheduler + "/" + governor + "/" + cell.arrival;

                        fleet::FleetConfig cfg;
                        for (std::size_t d = 0; d < pool; ++d) {
                            cfg.devices.push_back(
                                fleet::make_device(opt.device + std::to_string(d), spec));
                        }
                        cfg.detector = kind;
                        cfg.scheduler = scheduler;
                        cfg.router = router;
                        cfg.pretrain_iterations = opt.pretrain;
                        cfg.pretrain_constraint_s = constraint;
                        if (trace_axis) {
                            // The trace's stream table defines the streams;
                            // replay substitutes for the arrival processes.
                            cfg.streams =
                                trace::TraceArrivalSource(arrival_token).stream_specs();
                            cfg.replay_trace = arrival_token;
                        } else {
                            auto cell_arrival = arrival;
                            cell_arrival.rate_hz = cli::parse_positive_double(
                                kTool, "--rate", arrival_token);
                            for (std::size_t i = 0; i < opt.streams; ++i) {
                                serving::StreamSpec stream;
                                stream.name = "stream" + std::to_string(i);
                                stream.dataset = dataset;
                                stream.slo_s = slo_s;
                                stream.requests = requests;
                                stream.arrival = cell_arrival;
                                stream.arrival.phase_s =
                                    static_cast<double>(i) /
                                    (cell_arrival.rate_hz *
                                     static_cast<double>(opt.streams));
                                cfg.streams.push_back(std::move(stream));
                            }
                        }

                        auto scenario = std::make_unique<harness::Scenario>(
                            runtime::static_experiment(spec, kind, dataset, 1, 0,
                                                       opt.seed.value));
                        scenario->name = cell.name;
                        scenario->title = "lotus_sweep cell " + cell.name;
                        scenario->fleet = std::move(cfg);
                        scenario->arms.push_back(
                            cli::make_governor_arm(kTool, governor, spec));
                        cell.scenario = std::move(scenario);
                        cells.push_back(std::move(cell));
                    }
                }
            }
        }
    }
    return cells;
}

} // namespace

int main(int argc, char** argv) {
    const auto opt = parse(argc, argv);
    auto cells = build_cells(opt);
    const std::size_t total = cells.size();

    // Contiguous shard [lo, hi): floor(k*C/N) boundaries cover every cell
    // exactly once across the N shards.
    const std::size_t lo = (opt.shard_k - 1) * total / opt.shard_n;
    const std::size_t hi = opt.shard_k * total / opt.shard_n;

    harness::HarnessConfig cfg;
    cfg.jobs = opt.jobs;
    cfg.seed = opt.seed.value;
    cfg.summary_only = true;
    const harness::ExperimentHarness harness(cfg);
    std::vector<const harness::Scenario*> batch;
    batch.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) batch.push_back(cells[i].scenario.get());
    std::fprintf(stderr, "%s: %zu of %zu cells (shard %zu/%zu), %zu jobs, seed %llu\n",
                 kTool.c_str(), hi - lo, total, opt.shard_k, opt.shard_n,
                 harness.config().jobs,
                 static_cast<unsigned long long>(harness.config().seed));

    std::vector<harness::EpisodeResult> results;
    try {
        results = harness.run(batch);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", kTool.c_str(), e.what());
        return 1;
    }

    std::filesystem::create_directories(opt.out_dir);
    std::ofstream csv(opt.out_dir + "/sweep.csv", std::ios::binary);
    std::ofstream json(opt.out_dir + "/sweep.json", std::ios::binary);
    if (!csv || !json) {
        std::fprintf(stderr, "%s: cannot write into %s\n", kTool.c_str(),
                     opt.out_dir.c_str());
        return 1;
    }

    const std::vector<std::string> columns = {
        "cell",          "name",       "devices",   "router",
        "scheduler",     "governor",   "arrival",   "episode_seed",
        "requests",      "served",     "shed",      "missed",
        "miss_rate",     "shed_rate",  "p50_ms",    "p95_ms",
        "p99_ms",        "mean_wait_ms", "throughput_rps", "energy_per_req_j",
        "peak_temp_c",   "makespan_s", "total_energy_j", "migrations",
        "load_skew"};
    const auto csv_line = [&csv](const std::vector<std::string>& fields) {
        for (std::size_t i = 0; i < fields.size(); ++i) {
            if (i != 0) csv << ",";
            csv << util::csv_escape(fields[i]);
        }
        csv << "\n";
    };
    if (opt.shard_k == 1) {
        csv_line(columns);
        // Meta line: only the first shard carries it, so shard
        // concatenation reproduces the unsharded file byte-for-byte. The
        // declared cell count is the FULL cartesian size.
        std::string axes = "{\"devices\":[";
        const auto join = [](const std::vector<std::string>& items) {
            std::string out;
            for (std::size_t i = 0; i < items.size(); ++i) {
                if (i != 0) out += ",";
                out += telemetry::jstr(items[i]);
            }
            return out;
        };
        axes += join(opt.devices) + "],\"router\":[" + join(opt.routers);
        axes += "],\"scheduler\":[" + join(opt.schedulers);
        axes += "],\"governor\":[" + join(opt.governors);
        axes += "],\"arrival\":[" +
                join(opt.traces.empty() ? opt.rates : opt.traces) + "]}";
        json << "{" << util::build_info_json_fields()
             << ",\"generator\":\"lotus_sweep\",\"cells\":" << total
             << ",\"seed\":" << json_escape(std::to_string(opt.seed.value))
             << ",\"axes\":" << axes << "}\n";
    }

    for (std::size_t i = lo; i < hi; ++i) {
        const auto& cell = cells[i];
        const auto& r = results[i - lo];
        const auto& t = *r.fleet_trace;
        const auto agg = t.aggregate();
        const auto seed_str = std::to_string(r.episode_seed);

        csv_line({std::to_string(cell.index), cell.name,
                  std::to_string(cell.devices), cell.router, cell.scheduler,
                  cell.governor, cell.arrival, seed_str,
                  std::to_string(agg.requests), std::to_string(agg.served),
                  std::to_string(agg.shed), std::to_string(agg.missed),
                  util::format_double(agg.miss_rate, 4),
                  util::format_double(agg.shed_rate, 4),
                  util::format_double(agg.p50_ms, 3),
                  util::format_double(agg.p95_ms, 3),
                  util::format_double(agg.p99_ms, 3),
                  util::format_double(agg.mean_wait_ms, 3),
                  util::format_double(agg.throughput_rps, 4),
                  util::format_double(agg.energy_per_req_j, 3),
                  util::format_double(t.peak_temp_c(), 2),
                  util::format_double(t.makespan_s(), 3),
                  util::format_double(t.total_energy_j(), 3),
                  std::to_string(t.migrations()),
                  util::format_double(t.load_skew(), 4)});

        json << "{\"cell\":" << cell.index << ",\"name\":" << json_escape(cell.name)
             << ",\"devices\":" << cell.devices
             << ",\"router\":" << json_escape(cell.router)
             << ",\"scheduler\":" << json_escape(cell.scheduler)
             << ",\"governor\":" << json_escape(cell.governor)
             << ",\"arrival\":" << json_escape(cell.arrival)
             << ",\"episode_seed\":" << json_escape(seed_str) << ",\"summary\":{"
             << "\"requests\":" << agg.requests << ",\"served\":" << agg.served
             << ",\"shed\":" << agg.shed << ",\"missed\":" << agg.missed
             << ",\"miss_rate\":" << telemetry::jnum(agg.miss_rate)
             << ",\"shed_rate\":" << telemetry::jnum(agg.shed_rate)
             << ",\"p50_ms\":" << telemetry::jnum(agg.p50_ms)
             << ",\"p95_ms\":" << telemetry::jnum(agg.p95_ms)
             << ",\"p99_ms\":" << telemetry::jnum(agg.p99_ms)
             << ",\"mean_wait_ms\":" << telemetry::jnum(agg.mean_wait_ms)
             << ",\"throughput_rps\":" << telemetry::jnum(agg.throughput_rps)
             << ",\"energy_per_req_j\":" << telemetry::jnum(agg.energy_per_req_j)
             << ",\"peak_temp_c\":" << telemetry::jnum(t.peak_temp_c())
             << ",\"makespan_s\":" << telemetry::jnum(t.makespan_s())
             << ",\"total_energy_j\":" << telemetry::jnum(t.total_energy_j())
             << ",\"migrations\":" << t.migrations()
             << ",\"load_skew\":" << telemetry::jnum(t.load_skew()) << "}}\n";
    }
    csv.flush();
    json.flush();
    if (!csv || !json) {
        std::fprintf(stderr, "%s: write failed in %s\n", kTool.c_str(),
                     opt.out_dir.c_str());
        return 1;
    }
    std::fprintf(stderr, "%s: wrote %s/sweep.csv and %s/sweep.json\n", kTool.c_str(),
                 opt.out_dir.c_str(), opt.out_dir.c_str());
    return 0;
}
