#!/usr/bin/env python3
"""End-to-end gate for the lotus_inspect diff contract.

Runs the fleet serving smoke twice (same seed, LOTUS_BENCH_FAST honoured
from the environment), then asserts:

  1. `lotus_inspect diff A B` on the two identical telemetry trees exits 0
     and reports zero regressions and zero improvements -- the determinism
     contract the CI identity gate relies on;
  2. after perturbing one health.json counter in a copy of tree B, the diff
     exits non-zero and reports the regression -- the gate actually bites.

Usage:
    inspect_diff_gate.py --serve PATH/TO/lotus_serve --inspect PATH/TO/lotus_inspect
        [--scenario serve_fleet_saturation] [--devices 4] [--workdir DIR]

Exit 0 when both properties hold, 1 otherwise, 2 on setup failure.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile


def run(cmd, **kwargs):
    proc = subprocess.run(cmd, capture_output=True, text=True, **kwargs)
    return proc


def serve_tree(serve, scenario, devices, out_dir):
    proc = run([serve, "--scenario", scenario, "--devices", str(devices),
                "--format", "json", "--telemetry", out_dir])
    if proc.returncode != 0:
        print(f"inspect_diff_gate: {serve} failed:\n{proc.stderr}", file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--serve", required=True)
    ap.add_argument("--inspect", required=True)
    ap.add_argument("--scenario", default="serve_fleet_saturation")
    ap.add_argument("--devices", type=int, default=4)
    ap.add_argument("--workdir")
    args = ap.parse_args()

    workdir = args.workdir or tempfile.mkdtemp(prefix="inspect_diff_gate_")
    tree_a = os.path.join(workdir, "run_a")
    tree_b = os.path.join(workdir, "run_b")
    for tree in (tree_a, tree_b):
        shutil.rmtree(tree, ignore_errors=True)
        serve_tree(args.serve, args.scenario, args.devices, tree)

    failures = []

    # Property 1: identical runs diff clean with exit 0.
    proc = run([args.inspect, "diff", tree_a, tree_b])
    if proc.returncode != 0:
        failures.append(f"diff of identical trees exited {proc.returncode}:\n"
                        f"{proc.stdout}{proc.stderr}")
    if "diff: 0 regressions, 0 improvements" not in proc.stdout:
        failures.append(f"diff of identical trees reported deltas:\n{proc.stdout}")

    # Property 2: a perturbed counter must trip the gate.
    tree_bad = os.path.join(workdir, "run_bad")
    shutil.rmtree(tree_bad, ignore_errors=True)
    shutil.copytree(tree_b, tree_bad)
    victims = sorted(
        os.path.join(root, f)
        for root, _, files in os.walk(tree_bad) for f in files if f == "health.json")
    if not victims:
        print("inspect_diff_gate: no health.json produced", file=sys.stderr)
        sys.exit(2)
    with open(victims[0], "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    doc["fleet"]["missed"] += 1
    with open(victims[0], "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    proc = run([args.inspect, "diff", tree_a, tree_bad])
    if proc.returncode == 0:
        failures.append(f"diff missed a perturbed counter:\n{proc.stdout}")
    if "REGRESSION" not in proc.stdout:
        failures.append(f"perturbed diff did not flag a regression:\n{proc.stdout}")

    if not args.workdir:
        shutil.rmtree(workdir, ignore_errors=True)

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("inspect_diff_gate: identity diff clean, perturbation detected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
