// Quickstart: run LOTUS against the default governor on a simulated Jetson
// Orin Nano executing Faster R-CNN over a KITTI-like stream, and print the
// paper's three headline metrics (mean latency, latency std, satisfaction
// rate) plus thermals for both.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "lotus_repro.hpp"

namespace {

void report(const char* name, const lotus::runtime::Summary& s) {
    std::printf("  %-28s mean %7.1f ms   std %6.1f ms   R_L %5.1f %%   T_dev %5.1f C"
                "   T_max %5.1f C   P %4.1f W   throttled %4.1f %%\n",
                name, s.mean_latency_s * 1e3, s.std_latency_s * 1e3,
                s.satisfaction_rate * 100.0, s.mean_device_temp, s.max_device_temp,
                s.mean_power_w, s.throttled_fraction * 100.0);
}

} // namespace

int main() {
    using namespace lotus;

    const auto spec = platform::orin_nano_spec();
    constexpr std::size_t kIterations = 2000;
    constexpr std::size_t kPretrain = 1500;

    std::printf("LOTUS quickstart: %s + FasterRCNN + KITTI, %zu iterations\n",
                spec.name.c_str(), kIterations);
    std::printf("latency constraint L = %.0f ms, throttling bound = %.0f C\n\n",
                workload::latency_constraint_s(spec.name, detector::DetectorKind::faster_rcnn,
                                               "KITTI") *
                    1e3,
                platform::throttle_bound_celsius(spec));

    // --- baseline: the board's stock governors ------------------------------
    {
        auto cfg = runtime::static_experiment(spec, detector::DetectorKind::faster_rcnn,
                                              "KITTI", kIterations, /*pretrain=*/0);
        runtime::ExperimentRunner runner(cfg);
        auto governor = governors::DefaultGovernor::orin_nano();
        const auto trace = runner.run(governor);
        report(governor.name().c_str(), trace.summary());
    }

    // --- zTT (learning baseline) --------------------------------------------
    {
        auto cfg = runtime::static_experiment(spec, detector::DetectorKind::faster_rcnn,
                                              "KITTI", kIterations, kPretrain);
        runtime::ExperimentRunner runner(cfg);
        governors::ZttConfig ztt_cfg;
        ztt_cfg.t_thres_celsius = platform::reward_threshold_celsius(spec);
        governors::ZttGovernor ztt(spec.cpu.opp.num_levels(), spec.gpu.opp.num_levels(),
                                   ztt_cfg);
        const auto trace = runner.run(ztt);
        report(ztt.name().c_str(), trace.summary());
    }

    // --- LOTUS ---------------------------------------------------------------
    {
        auto cfg = runtime::static_experiment(spec, detector::DetectorKind::faster_rcnn,
                                              "KITTI", kIterations, kPretrain);
        runtime::ExperimentRunner runner(cfg);
        core::LotusConfig lotus_cfg;
        lotus_cfg.reward.t_thres_celsius = platform::reward_threshold_celsius(spec);
        core::LotusAgent agent(spec.cpu.opp.num_levels(), spec.gpu.opp.num_levels(),
                               lotus_cfg);
        const auto trace = runner.run(agent);
        report(agent.name().c_str(), trace.summary());
        std::printf("\n  (Lotus pre-trained for %zu frames; epsilon now %.3f, "
                    "%zu cool-down activations)\n",
                    kPretrain, agent.epsilon(), agent.cooldown_activations());
    }
    return 0;
}
