// Quickstart: run LOTUS against the stock governors and zTT on a simulated
// Jetson Orin Nano executing Faster R-CNN over a KITTI-like stream, and
// print the paper's three headline metrics (mean latency, latency std,
// satisfaction rate) plus thermals for every arm.
//
// The experiment is the registry's "example_quickstart" scenario; the
// ExperimentHarness runs all three governor arms concurrently and
// deterministically (same numbers at any --jobs count).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/quickstart

#include <cstdio>

#include "lotus_repro.hpp"

namespace {

void report(const char* name, const lotus::runtime::Summary& s) {
    std::printf("  %-28s mean %7.1f ms   std %6.1f ms   R_L %5.1f %%   T_dev %5.1f C"
                "   T_max %5.1f C   P %4.1f W   throttled %4.1f %%\n",
                name, s.mean_latency_s * 1e3, s.std_latency_s * 1e3,
                s.satisfaction_rate * 100.0, s.mean_device_temp, s.max_device_temp,
                s.mean_power_w, s.throttled_fraction * 100.0);
}

} // namespace

int main() {
    using namespace lotus;

    const auto& scenario = harness::ScenarioRegistry::instance().at("example_quickstart");
    const auto& cfg = scenario.config;

    std::printf("LOTUS quickstart: %s + %s + %s, %zu iterations\n",
                cfg.device_spec.name.c_str(), detector::to_string(cfg.detector),
                cfg.schedule.at(0).dataset.c_str(), cfg.iterations);
    std::printf("latency constraint L = %.0f ms, throttling bound = %.0f C\n\n",
                cfg.schedule.at(0).latency_constraint_s * 1e3,
                platform::throttle_bound_celsius(cfg.device_spec));

    const harness::ExperimentHarness harness;
    for (const auto& r : harness.run(scenario)) {
        report(r.arm.c_str(), r.trace.summary());
    }

    std::printf("\n(the learning governors pre-trained for %zu unrecorded frames; every\n"
                "episode's seed derives from (seed 42, scenario, arm), so re-runs and\n"
                "parallel runs reproduce these numbers exactly)\n",
                cfg.pretrain_iterations);
    return 0;
}
