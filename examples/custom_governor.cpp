// Custom-governor example: how a downstream user extends the framework.
//
// Implements a simple deadline-aware heuristic governor ("budget") through
// the public Governor interface: it tracks the recent latency slack and
// steps the GPU ladder up or down to hold a target margin below the
// deadline, with a hard back-off when the device approaches the throttling
// bound. The example builds an *ad-hoc* Scenario around it -- custom arms
// slot into the same ExperimentHarness the registry scenarios use -- and
// evaluates it against the stock governors and LOTUS.
//
// Run: ./build/custom_governor

#include <algorithm>
#include <cstdio>

#include "lotus_repro.hpp"

using namespace lotus;

namespace {

/// Heuristic: keep latency in [0.8 L, 0.95 L]; slow down when cool slack is
/// large, speed up when close to the deadline, and drop two levels when the
/// die temperature approaches the trip point.
class BudgetGovernor final : public governors::Governor {
public:
    explicit BudgetGovernor(double t_safe_celsius) : t_safe_(t_safe_celsius) {}

    [[nodiscard]] std::string name() const override { return "budget-heuristic"; }

    governors::LevelRequest on_frame_start(const governors::Observation& obs) override {
        cpu_ = std::min(cpu_, obs.cpu_levels - 1);
        gpu_ = std::min(gpu_, obs.gpu_levels - 1);

        if (obs.cpu_temp > t_safe_ || obs.gpu_temp > t_safe_) {
            gpu_ = gpu_ >= 2 ? gpu_ - 2 : 0;
            cpu_ = cpu_ >= 1 ? cpu_ - 1 : 0;
        } else if (obs.last_frame_latency_s > 0.0) {
            const double ratio = obs.last_frame_latency_s / obs.latency_constraint_s;
            if (ratio > 0.95) {
                if (gpu_ + 1 < obs.gpu_levels) ++gpu_;
                if (cpu_ + 1 < obs.cpu_levels) ++cpu_;
            } else if (ratio < 0.80 && gpu_ > 0) {
                --gpu_;
            }
        }
        return governors::LevelRequest::set(cpu_, gpu_);
    }

    governors::LevelRequest on_post_rpn(const governors::Observation& obs) override {
        // Proposal-aware boost, LOTUS-style but hand-written: many proposals
        // with little remaining budget -> jump the GPU to the ceiling.
        const double remaining = obs.latency_constraint_s - obs.elapsed_in_frame_s;
        if (obs.proposals > 300 && remaining < 0.35 * obs.latency_constraint_s) {
            return governors::LevelRequest::set(cpu_, obs.gpu_levels - 1);
        }
        return governors::LevelRequest::none();
    }

private:
    double t_safe_;
    std::size_t cpu_ = 7;
    std::size_t gpu_ = 3;
};

void report(const std::string& name, const runtime::Trace& trace) {
    const auto s = trace.summary();
    std::printf("  %-34s mean %7.1f ms  std %6.1f ms  R_L %5.1f %%  T_dev %5.1f C  "
                "throttled %4.1f %%\n",
                name.c_str(), s.mean_latency_s * 1e3, s.std_latency_s * 1e3,
                s.satisfaction_rate * 100.0, s.mean_device_temp,
                s.throttled_fraction * 100.0);
}

} // namespace

int main() {
    const auto spec = platform::orin_nano_spec();
    const std::size_t frames = harness::fast_mode() ? 600 : 2000;

    std::printf("Custom governor sandbox: FasterRCNN + VisDrone2019 on %s\n\n",
                spec.name.c_str());

    // Ad-hoc scenario: the registry is convenient, not mandatory.
    harness::Scenario scenario(runtime::static_experiment(
        spec, detector::DetectorKind::faster_rcnn, "VisDrone2019", frames,
        harness::pretrain_iterations()));
    scenario.name = "custom_governor_sandbox";
    scenario.title = "Custom governor sandbox";
    scenario.arms.push_back(harness::default_arm(spec));
    {
        harness::ArmSpec arm;
        arm.name = "budget-heuristic";
        arm.make = [t_safe = platform::reward_threshold_celsius(spec)](std::uint64_t)
            -> std::unique_ptr<governors::Governor> {
            return std::make_unique<BudgetGovernor>(t_safe);
        };
        scenario.arms.push_back(std::move(arm));
    }
    scenario.arms.push_back(harness::lotus_arm(spec));

    const harness::ExperimentHarness harness;
    for (const auto& r : harness.run(scenario)) {
        report(r.arm, r.trace);
    }

    std::printf("\nThe heuristic holds the deadline but needs hand-tuned thresholds per\n"
                "device/detector/dataset; the learned agent discovers the operating point\n"
                "(and the proposal-conditional boost) on its own -- the paper's case for\n"
                "DRL-based management.\n");
    return 0;
}
