// Drone surveillance example: the VisDrone-style scenario from the paper's
// introduction -- a drone running MaskRCNN for environmental monitoring.
//
// A patrol mission is modelled as an altitude/airflow-driven ambient
// profile (Sec. 5.2.2 "a drone operating in open airspace can experience
// very different outside temperatures"): the drone climbs from a warm
// launch site into cold air, loiters, and descends again. LOTUS is trained
// on the ground and then flown; the example reports per-phase latency
// stability against the stock governors. The mission lives in the registry
// as "example_drone_mission" (phases are fractions of the mission length).
//
// Run: ./build/drone_surveillance

#include <cstdio>

#include "lotus_repro.hpp"

using namespace lotus;

namespace {

void report_phase(const char* phase, const runtime::Trace& trace, std::size_t first,
                  std::size_t last) {
    const auto s = trace.summary(first, last);
    std::printf("    %-10s mean %7.1f ms  std %6.1f ms  R_L %5.1f %%  T_dev %5.1f C\n",
                phase, s.mean_latency_s * 1e3, s.std_latency_s * 1e3,
                s.satisfaction_rate * 100.0, s.mean_device_temp);
}

void report(const std::string& name, const runtime::Trace& trace) {
    // Mission phases as fractions of the run: pre-flight / climb / loiter /
    // descend (matches the registry's mission ambient profile).
    const auto n = trace.size();
    std::printf("  %s\n", name.c_str());
    report_phase("pre-flight", trace, 0, n / 6);
    report_phase("climb", trace, n / 6, n * 7 / 18);
    report_phase("loiter", trace, n * 7 / 18, n * 13 / 18);
    report_phase("descend", trace, n * 13 / 18, n * 17 / 18);
    const auto s = trace.summary();
    std::printf("    %-10s mean %7.1f ms  std %6.1f ms  R_L %5.1f %%  energy %.0f J\n\n",
                "mission", s.mean_latency_s * 1e3, s.std_latency_s * 1e3,
                s.satisfaction_rate * 100.0,
                s.mean_power_w * s.mean_latency_s * static_cast<double>(s.frames));
}

} // namespace

int main() {
    const auto& scenario =
        harness::ScenarioRegistry::instance().at("example_drone_mission");
    const auto& cfg = scenario.config;

    std::printf("Drone surveillance mission: MaskRCNN on VisDrone2019-style imagery\n");
    std::printf("device: %s, deadline %.0f ms, %zu mission frames\n",
                cfg.device_spec.name.c_str(),
                cfg.schedule.at(0).latency_constraint_s * 1e3, cfg.iterations);
    std::printf("ambient: %s\n\n", cfg.ambient.description().c_str());

    const harness::ExperimentHarness harness;
    for (const auto& r : harness.run(scenario)) {
        report(r.arm, r.trace);
    }
    return 0;
}
