// Drone surveillance example: the VisDrone-style scenario from the paper's
// introduction -- a drone running MaskRCNN for environmental monitoring.
//
// A patrol mission is modelled as an altitude/airflow-driven ambient
// profile (Sec. 5.2.2 "a drone operating in open airspace can experience
// very different outside temperatures"): the drone climbs from a warm
// launch site into cold air, loiters, and descends again. LOTUS is trained
// on the ground and then flown; the example reports per-phase latency
// stability against the stock governors.
//
// Run: ./build/examples/drone_surveillance

#include <cstdio>

#include "lotus_repro.hpp"

using namespace lotus;

namespace {

constexpr std::size_t kMissionFrames = 1800;

/// Mission profile: ground (25 C) -> climb (linear to -5 C) -> loiter
/// (-5 C) -> descend (back to 25 C).
workload::AmbientProfile mission_profile() {
    return workload::AmbientProfile::custom(
        [](std::size_t i) {
            const double t = static_cast<double>(i);
            if (i < 300) return 25.0;                            // pre-flight
            if (i < 700) return 25.0 - 30.0 * (t - 300) / 400.0; // climb
            if (i < 1300) return -5.0;                           // loiter
            if (i < 1700) return -5.0 + 30.0 * (t - 1300) / 400.0; // descend
            return 25.0;
        },
        "drone mission: ground/climb/loiter/descend");
}

void report_phase(const char* phase, const runtime::Trace& trace, std::size_t first,
                  std::size_t last) {
    const auto s = trace.summary(first, last);
    std::printf("    %-10s mean %7.1f ms  std %6.1f ms  R_L %5.1f %%  T_dev %5.1f C\n",
                phase, s.mean_latency_s * 1e3, s.std_latency_s * 1e3,
                s.satisfaction_rate * 100.0, s.mean_device_temp);
}

void report(const char* name, const runtime::Trace& trace) {
    std::printf("  %s\n", name);
    report_phase("pre-flight", trace, 0, 300);
    report_phase("climb", trace, 300, 700);
    report_phase("loiter", trace, 700, 1300);
    report_phase("descend", trace, 1300, 1700);
    const auto s = trace.summary();
    std::printf("    %-10s mean %7.1f ms  std %6.1f ms  R_L %5.1f %%  energy %.0f J\n\n",
                "mission", s.mean_latency_s * 1e3, s.std_latency_s * 1e3,
                s.satisfaction_rate * 100.0,
                s.mean_power_w * s.mean_latency_s * static_cast<double>(s.frames));
}

} // namespace

int main() {
    const auto spec = platform::orin_nano_spec();

    runtime::ExperimentConfig cfg{
        .device_spec = spec,
        .detector = detector::DetectorKind::mask_rcnn,
        .schedule = workload::DomainSchedule::constant(
            "VisDrone2019", workload::latency_constraint_s(
                                spec.name, detector::DetectorKind::mask_rcnn,
                                "VisDrone2019")),
        .ambient = mission_profile(),
        .iterations = kMissionFrames,
        .pretrain_iterations = 2000, // ground training before the mission
        .seed = 7,
        .engine = {},
    };

    std::printf("Drone surveillance mission: MaskRCNN on VisDrone2019-style imagery\n");
    std::printf("device: %s, deadline %.0f ms, %zu mission frames\n\n", spec.name.c_str(),
                cfg.schedule.at(0).latency_constraint_s * 1e3, kMissionFrames);

    {
        auto gov = governors::DefaultGovernor::orin_nano();
        auto run_cfg = cfg;
        run_cfg.pretrain_iterations = 0; // nothing to train
        runtime::ExperimentRunner runner(run_cfg);
        report(gov.name().c_str(), runner.run(gov));
    }
    {
        core::LotusConfig lotus_cfg;
        lotus_cfg.reward.t_thres_celsius = platform::reward_threshold_celsius(spec);
        core::LotusAgent agent(spec.cpu.opp.num_levels(), spec.gpu.opp.num_levels(),
                               lotus_cfg);
        runtime::ExperimentRunner runner(cfg);
        const auto trace = runner.run(agent);
        report(agent.name().c_str(), trace);
        std::printf("  (cool-down activations during training+mission: %zu)\n",
                    agent.cooldown_activations());
    }
    return 0;
}
