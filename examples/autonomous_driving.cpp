// Autonomous-driving example: KITTI-style perception with a hard deadline.
//
// A vehicle perception stack runs FasterRCNN continuously; the control loop
// downstream needs frames at a stable cadence, so the application cares
// about *tail* latency, not just the mean. This example runs LOTUS against
// the stock governors and zTT on a long drive (heat-soaked device) and
// reports p50/p95/p99 latencies and deadline misses -- the tail view of the
// paper's R_L metric.
//
// Run: ./build/examples/autonomous_driving

#include <cstdio>

#include "lotus_repro.hpp"

using namespace lotus;

namespace {

constexpr std::size_t kDriveFrames = 2500;

void report(const char* name, const runtime::Trace& trace) {
    const auto lat = trace.latencies_ms();
    const auto s = trace.summary();
    const double deadline_ms = trace[0].constraint_s * 1e3;
    std::size_t misses = 0;
    std::size_t worst_streak = 0;
    std::size_t streak = 0;
    for (const auto& row : trace.rows()) {
        if (row.latency_s >= row.constraint_s) {
            ++misses;
            worst_streak = std::max(worst_streak, ++streak);
        } else {
            streak = 0;
        }
    }
    std::printf("  %-34s p50 %6.1f  p95 %6.1f  p99 %6.1f ms | misses %4zu/%zu "
                "(worst streak %zu) | T_dev %5.1f C\n",
                name, util::percentile(lat, 50), util::percentile(lat, 95),
                util::percentile(lat, 99), misses, trace.size(), worst_streak,
                s.mean_device_temp);
    (void)deadline_ms;
}

} // namespace

int main() {
    const auto spec = platform::orin_nano_spec();
    const double deadline = workload::latency_constraint_s(
        spec.name, detector::DetectorKind::faster_rcnn, "KITTI");

    std::printf("Autonomous driving perception: FasterRCNN on KITTI-style frames\n");
    std::printf("device: %s, frame deadline %.0f ms, %zu frames (heat-soaked drive)\n\n",
                spec.name.c_str(), deadline * 1e3, kDriveFrames);

    auto cfg = runtime::static_experiment(spec, detector::DetectorKind::faster_rcnn,
                                          "KITTI", kDriveFrames, /*pretrain=*/2500,
                                          /*seed=*/12);

    {
        auto run_cfg = cfg;
        run_cfg.pretrain_iterations = 0;
        runtime::ExperimentRunner runner(run_cfg);
        auto gov = governors::DefaultGovernor::orin_nano();
        report(gov.name().c_str(), runner.run(gov));
    }
    {
        runtime::ExperimentRunner runner(cfg);
        governors::ZttConfig zc;
        zc.t_thres_celsius = platform::reward_threshold_celsius(spec);
        governors::ZttGovernor ztt(spec.cpu.opp.num_levels(), spec.gpu.opp.num_levels(),
                                   zc);
        report(ztt.name().c_str(), runner.run(ztt));
    }
    {
        runtime::ExperimentRunner runner(cfg);
        core::LotusConfig lc;
        lc.reward.t_thres_celsius = platform::reward_threshold_celsius(spec);
        core::LotusAgent agent(spec.cpu.opp.num_levels(), spec.gpu.opp.num_levels(), lc);
        report(agent.name().c_str(), runner.run(agent));
    }

    std::printf("\nA stable tail (small p99-p50 gap, short miss streaks) is what keeps\n"
                "tracking and control loops healthy; this is the latency-variation\n"
                "objective in Eq. (1) seen from the application side.\n");
    return 0;
}
