// Autonomous-driving example: KITTI-style perception with a hard deadline.
//
// A vehicle perception stack runs FasterRCNN continuously; the control loop
// downstream needs frames at a stable cadence, so the application cares
// about *tail* latency, not just the mean. This example runs the registry's
// "example_autonomous_driving" scenario (LOTUS vs the stock governors vs
// zTT on a long heat-soaked drive) and reports p50/p95/p99 latencies and
// deadline misses -- the tail view of the paper's R_L metric.
//
// Run: ./build/autonomous_driving

#include <algorithm>
#include <cstdio>

#include "lotus_repro.hpp"

using namespace lotus;

namespace {

void report(const std::string& name, const runtime::Trace& trace) {
    const auto lat = trace.latencies_ms();
    const auto s = trace.summary();
    std::size_t misses = 0;
    std::size_t worst_streak = 0;
    std::size_t streak = 0;
    for (const auto& row : trace.rows()) {
        // "<= is satisfied": the repo-wide SLO boundary rule.
        if (row.latency_s > row.constraint_s) {
            ++misses;
            worst_streak = std::max(worst_streak, ++streak);
        } else {
            streak = 0;
        }
    }
    const auto pct = util::percentiles(lat, {50.0, 95.0, 99.0});
    std::printf("  %-34s p50 %6.1f  p95 %6.1f  p99 %6.1f ms | misses %4zu/%zu "
                "(worst streak %zu) | T_dev %5.1f C\n",
                name.c_str(), pct[0], pct[1], pct[2], misses, trace.size(), worst_streak,
                s.mean_device_temp);
}

} // namespace

int main() {
    const auto& scenario =
        harness::ScenarioRegistry::instance().at("example_autonomous_driving");
    const auto& cfg = scenario.config;

    std::printf("Autonomous driving perception: FasterRCNN on KITTI-style frames\n");
    std::printf("device: %s, frame deadline %.0f ms, %zu frames (heat-soaked drive)\n\n",
                cfg.device_spec.name.c_str(),
                cfg.schedule.at(0).latency_constraint_s * 1e3, cfg.iterations);

    const harness::ExperimentHarness harness;
    for (const auto& r : harness.run(scenario)) {
        report(r.arm, r.trace);
    }

    std::printf("\nA stable tail (small p99-p50 gap, short miss streaks) is what keeps\n"
                "tracking and control loops healthy; this is the latency-variation\n"
                "objective in Eq. (1) seen from the application side.\n");
    return 0;
}
