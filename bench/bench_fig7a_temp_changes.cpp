// Fig. 7a reproduction: robustness to environmental temperature changes.
// MaskRCNN + VisDrone2019 on the Jetson Orin Nano while the ambient moves
// warm zone (25 C) -> cold zone (0 C) -> warm zone (25 C).

#include <cstdio>

#include "common.hpp"

using namespace lotus;

int main() {
    const auto& sc = bench::scenario("fig7a_temp_changes");
    const auto iterations = sc.config.iterations;
    const auto third = iterations / 3;

    std::printf("Fig. 7a -- temperature changes (warm 25C / cold 0C / warm 25C)\n");
    std::printf("MaskRCNN + VisDrone2019 on Jetson Orin Nano, %zu iterations\n\n",
                iterations);

    const auto results = bench::run(sc);
    bench::print_figure("Fig. 7a traces", results);

    // Per-zone summaries: the paper's claim is fast, smooth adaptation at
    // each boundary.
    for (const auto& r : results) {
        const auto warm1 = r.trace.summary(0, third);
        const auto cold = r.trace.summary(third, 2 * third);
        const auto warm2 = r.trace.summary(2 * third, iterations);
        std::printf("%-10s warm1: %6.1f ms / R_L %5.1f%% | cold: %6.1f ms / R_L %5.1f%% "
                    "| warm2: %6.1f ms / R_L %5.1f%%  (T_dev %4.1f / %4.1f / %4.1f C)\n",
                    r.arm.c_str(), warm1.mean_latency_s * 1e3,
                    warm1.satisfaction_rate * 100, cold.mean_latency_s * 1e3,
                    cold.satisfaction_rate * 100, warm2.mean_latency_s * 1e3,
                    warm2.satisfaction_rate * 100, warm1.mean_device_temp,
                    cold.mean_device_temp, warm2.mean_device_temp);
    }
    bench::maybe_dump_csv(sc.name, results);
    std::printf("\nExpected shape: in the cold zone every method cools and speeds up\n"
                "(more thermal headroom); Lotus exploits it most while staying stable,\n"
                "and re-adapts fastest when the warm zone returns.\n");
    return 0;
}
