// Fig. 5 reproduction: as Fig. 4 (Jetson Orin Nano, default vs zTT vs
// LOTUS over 3,000 iterations) but with the heavier MaskRCNN detector whose
// per-proposal mask head makes the second stage far more variable.

#include <cstdio>

#include "common.hpp"

using namespace lotus;

int main() {
    const auto spec = platform::orin_nano_spec();
    std::printf("Fig. 5 -- Jetson Orin Nano + MaskRCNN: default vs zTT vs Lotus\n\n");

    for (const char* dataset : {"VisDrone2019", "KITTI"}) {
        auto cfg = runtime::static_experiment(spec, detector::DetectorKind::mask_rcnn,
                                              dataset, bench::orin_iterations(),
                                              bench::pretrain_iterations(),
                                              /*seed=*/2025);
        auto results = bench::run_arms(
            cfg, {bench::default_arm(spec), bench::ztt_arm(spec), bench::lotus_arm(spec)});

        const double constraint_ms = cfg.schedule.at(0).latency_constraint_s * 1e3;
        bench::print_figure(std::string("Fig. 5 (") + dataset + ")", results,
                            platform::throttle_bound_celsius(spec), constraint_ms);
        bench::print_table_block("summary", results);
        bench::maybe_dump_csv(std::string("fig5_") + dataset, results);
        std::printf("\n");
    }
    std::printf("Expected shape: as Fig. 4, with larger absolute latencies and spreads;\n"
                "Lotus's post-RPN boost matters most here because MaskRCNN's stage-2\n"
                "variance is the largest of the detector zoo.\n");
    return 0;
}
