// Fig. 5 reproduction: as Fig. 4 (Jetson Orin Nano, default vs zTT vs
// LOTUS over 3,000 iterations) but with the heavier MaskRCNN detector whose
// per-proposal mask head makes the second stage far more variable.

#include <cstdio>

#include "common.hpp"

using namespace lotus;

int main() {
    std::printf("Fig. 5 -- Jetson Orin Nano + MaskRCNN: default vs zTT vs Lotus\n\n");

    for (const char* name : {"fig5_visdrone", "fig5_kitti"}) {
        const auto& sc = bench::scenario(name);
        const auto results = bench::run(sc);
        bench::print_figure(sc.title, results);
        bench::print_table_block("summary", results);
        bench::maybe_dump_csv(sc.name, results);
        std::printf("\n");
    }
    std::printf("Expected shape: as Fig. 4, with larger absolute latencies and spreads;\n"
                "Lotus's post-RPN boost matters most here because MaskRCNN's stage-2\n"
                "variance is the largest of the detector zoo.\n");
    return 0;
}
