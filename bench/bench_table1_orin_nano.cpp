// Table 1 reproduction: quantitative results on the Jetson Orin Nano.
// For each (detector, dataset) cell: mean latency l-bar, latency std
// sigma_l and satisfaction rate R_L for default / zTT / LOTUS, printed next
// to the paper's reported values (attached to the registry arms).

#include <cstdio>

#include "common.hpp"

using namespace lotus;

int main() {
    std::printf("Table 1 -- quantitative results on Jetson Orin Nano\n");
    std::printf("(%zu measured iterations per arm; learning governors pre-trained for "
                "%zu frames)\n\n",
                harness::orin_iterations(), harness::pretrain_iterations());

    for (const char* name : {"table1_frcnn_kitti", "table1_frcnn_visdrone",
                             "table1_mrcnn_kitti", "table1_mrcnn_visdrone"}) {
        const auto& sc = bench::scenario(name);
        const auto results = bench::run(sc);
        bench::print_table_block(sc.title, results);
        bench::maybe_dump_csv(sc.name, results);
        std::printf("\n");
    }
    std::printf("Shape targets (absolute numbers differ; the substrate is a simulator):\n"
                "  per cell: mean  Lotus < zTT < default,  sigma  Lotus < zTT < default,\n"
                "  R_L  Lotus > zTT > default; Lotus runs at or below default's temps.\n");
    return 0;
}
