// Table 1 reproduction: quantitative results on the Jetson Orin Nano.
// For each (detector, dataset) cell: mean latency l-bar, latency std
// sigma_l and satisfaction rate R_L for default / zTT / LOTUS, printed next
// to the paper's reported values.

#include <cstdio>

#include "common.hpp"

using namespace lotus;

namespace {

struct Cell {
    detector::DetectorKind kind;
    const char* dataset;
    bench::PaperRow paper_default;
    bench::PaperRow paper_ztt;
    bench::PaperRow paper_lotus;
    std::uint64_t seed;
};

} // namespace

int main() {
    const auto spec = platform::orin_nano_spec();
    std::printf("Table 1 -- quantitative results on Jetson Orin Nano\n");
    std::printf("(%zu measured iterations per arm; learning governors pre-trained for "
                "%zu frames)\n\n",
                bench::orin_iterations(), bench::pretrain_iterations());

    // Paper values from Table 1 (l-bar ms, sigma_l ms, R_L).
    const Cell cells[] = {
        {detector::DetectorKind::faster_rcnn, "KITTI",
         {434.6, 139.8, 0.514}, {363.7, 85.6, 0.555}, {343.2, 68.6, 0.665}, 41},
        {detector::DetectorKind::faster_rcnn, "VisDrone2019",
         {686.0, 241.1, 0.294}, {577.6, 167.5, 0.463}, {523.5, 102.9, 0.711}, 42},
        {detector::DetectorKind::mask_rcnn, "KITTI",
         {443.9, 148.0, 0.598}, {408.3, 111.7, 0.871}, {388.5, 88.9, 0.952}, 43},
        {detector::DetectorKind::mask_rcnn, "VisDrone2019",
         {768.4, 260.4, 0.390}, {584.3, 114.2, 0.501}, {531.4, 70.7, 0.749}, 44},
    };

    for (const auto& cell : cells) {
        auto cfg = runtime::static_experiment(spec, cell.kind, cell.dataset,
                                              bench::orin_iterations(),
                                              bench::pretrain_iterations(), cell.seed);
        auto arm_default = bench::default_arm(spec);
        arm_default.paper = cell.paper_default;
        auto arm_ztt = bench::ztt_arm(spec, cell.seed * 7 + 1);
        arm_ztt.paper = cell.paper_ztt;
        auto arm_lotus = bench::lotus_arm(spec, cell.seed * 7 + 2);
        arm_lotus.paper = cell.paper_lotus;

        auto results = bench::run_arms(cfg, {arm_default, arm_ztt, arm_lotus});
        bench::print_table_block(std::string(detector::to_string(cell.kind)) + " / " +
                                     cell.dataset,
                                 results);
        bench::maybe_dump_csv(std::string("table1_") + detector::to_string(cell.kind) +
                                  "_" + cell.dataset,
                              results);
        std::printf("\n");
    }
    std::printf("Shape targets (absolute numbers differ; the substrate is a simulator):\n"
                "  per cell: mean  Lotus < zTT < default,  sigma  Lotus < zTT < default,\n"
                "  R_L  Lotus > zTT > default; Lotus runs at or below default's temps.\n");
    return 0;
}
