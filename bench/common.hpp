#pragma once
// Shared infrastructure for the paper-reproduction bench harnesses.
//
// Every bench binary is argument-free and prints the rows/series of one
// table or figure from the paper. The helpers here standardise:
//   * governor construction per device (default / zTT / LOTUS),
//   * multi-run experiment execution (parallelised across governors),
//   * paper-style figure rendering (temperature + latency ASCII charts with
//     the red-dashed throttling bound / latency constraint references),
//   * optional raw-trace CSV dumps (set LOTUS_BENCH_CSV=1; files land in
//     ./bench_out/).

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lotus_repro.hpp"

namespace lotus::bench {

/// Paper reference values for a table cell (used to print the
/// paper-vs-measured comparison).
struct PaperRow {
    double mean_ms = 0.0;
    double std_ms = 0.0;
    double satisfaction = 0.0; // fraction
};

/// One experiment arm: a named governor factory.
struct Arm {
    std::string name;
    std::function<std::unique_ptr<governors::Governor>()> make;
    std::optional<PaperRow> paper; // reference numbers if the paper has them
};

/// Result of running one arm.
struct ArmResult {
    std::string name;
    runtime::Trace trace;
    std::optional<PaperRow> paper;
};

/// Standard governor arms for a device: default, zTT, LOTUS.
[[nodiscard]] Arm default_arm(const platform::DeviceSpec& spec);
[[nodiscard]] Arm ztt_arm(const platform::DeviceSpec& spec, std::uint64_t seed = 11);
[[nodiscard]] Arm lotus_arm(const platform::DeviceSpec& spec, std::uint64_t seed = 7);

/// LOTUS arm with a customised configuration (ablations).
[[nodiscard]] Arm lotus_arm_with(const platform::DeviceSpec& spec,
                                 const std::string& label, core::LotusConfig cfg);

/// Run all arms against the same experiment config, in parallel threads.
[[nodiscard]] std::vector<ArmResult> run_arms(const runtime::ExperimentConfig& config,
                                              std::vector<Arm> arms);

/// Number of recorded iterations for figure/table benches on each device
/// (paper: 3,000 on the Orin Nano, 1,000 on the Mi 11 Lite), and the
/// pre-training budget for the learning governors (the paper trains for
/// 10,000 iterations; the phone gets a larger budget because its 1,000
/// measured frames leave less room for online convergence).
/// LOTUS_BENCH_FAST=1 shrinks everything for smoke runs.
[[nodiscard]] std::size_t orin_iterations();
[[nodiscard]] std::size_t mi11_iterations();
[[nodiscard]] std::size_t pretrain_iterations();
[[nodiscard]] std::size_t mi11_pretrain_iterations();

/// Paper-style figure: device-temperature chart over iterations (with the
/// throttling bound) stacked above a latency chart (with the constraint),
/// one series per arm.
void print_figure(const std::string& title, const std::vector<ArmResult>& results,
                  double throttle_bound_c, double constraint_ms);

/// Paper-style quantitative table block for one (detector, dataset) cell.
void print_table_block(const std::string& heading, const std::vector<ArmResult>& results);

/// Dump raw traces to ./bench_out/<stem>_<arm>.csv when LOTUS_BENCH_CSV=1.
void maybe_dump_csv(const std::string& stem, const std::vector<ArmResult>& results);

} // namespace lotus::bench
