#pragma once
// Thin front-end glue for the paper-reproduction bench binaries.
//
// Every bench binary is argument-free and prints the rows/series of one
// table or figure from the paper. All experiment driving lives in
// lotus::harness: a bench looks its scenarios up in the ScenarioRegistry,
// runs them on the shared ExperimentHarness (episodes execute in parallel;
// LOTUS_BENCH_JOBS overrides the pool size), and renders via the harness
// sinks. Optional raw-trace CSV dumps: set LOTUS_BENCH_CSV=1; files land in
// ./bench_out/.

#include <string>
#include <vector>

#include "lotus_repro.hpp"

namespace lotus::bench {

using harness::EpisodeResult;
using harness::Scenario;

/// The registry scenario with this name (throws if unknown).
[[nodiscard]] const Scenario& scenario(const std::string& name);

/// Run one scenario's full arm set on the shared bench harness.
[[nodiscard]] std::vector<EpisodeResult> run(const Scenario& s);
[[nodiscard]] std::vector<EpisodeResult> run(const std::string& name);

/// Paper-style renderers (wrappers over the harness sinks).
void print_figure(const std::string& title, const std::vector<EpisodeResult>& results);
void print_table_block(const std::string& heading,
                       const std::vector<EpisodeResult>& results);

/// Dump raw traces to ./bench_out/<stem>_<arm>.csv when LOTUS_BENCH_CSV=1.
void maybe_dump_csv(const std::string& stem, const std::vector<EpisodeResult>& results);

} // namespace lotus::bench
