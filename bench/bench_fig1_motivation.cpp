// Fig. 1 reproduction: mean and variation of inference latency plus mAP@0.5
// for two-stage detectors (FasterRCNN, MaskRCNN) and the one-stage YOLOv5 on
// KITTI and VisDrone2019.
//
// Methodology: each detector runs under the board's stock governors on the
// Jetson Orin Nano for a full heat-soaked window, exactly the regime the
// paper's motivation section measures -- so the two-stage numbers include
// both proposal-count variance and thermal-throttling variance, while
// YOLOv5's fixed-work pipeline shows a tight distribution. mAP values are
// static metadata reproduced from the paper (we do not run real networks;
// see DESIGN.md "Substitutions").

#include <cstdio>

#include "common.hpp"

using namespace lotus;

int main() {
    std::printf("Fig. 1 -- latency mean/variation and mAP@0.5 per detector and dataset\n");
    std::printf("(Jetson Orin Nano, stock governors, %zu iterations per cell)\n\n",
                harness::orin_iterations());

    util::TextTable table({"dataset", "detector", "mean (ms)", "std (ms)",
                           "p5 (ms)", "p95 (ms)", "mAP@0.5 (paper)"});

    // One registry scenario per dataset; one arm per detector.
    for (const char* name : {"fig1_kitti", "fig1_visdrone"}) {
        const auto& sc = bench::scenario(name);
        const auto results = bench::run(sc);
        for (const auto& r : results) {
            const auto s = r.trace.summary();
            const auto pct = util::percentiles(r.trace.latencies_ms(), {5.0, 95.0});
            const auto& dataset = r.config.schedule.at(0).dataset;
            table.add_row({
                dataset,
                r.arm, // arm name == detector name in the Fig. 1 scenarios
                util::format_double(s.mean_latency_s * 1e3, 1),
                util::format_double(s.std_latency_s * 1e3, 1),
                util::format_double(pct[0], 1),
                util::format_double(pct[1], 1),
                util::format_double(workload::map50(r.config.detector, dataset), 1),
            });
        }
        bench::maybe_dump_csv(sc.name, results);
    }
    std::printf("%s\n", table.render("Fig. 1 (measured latency; mAP from paper)").c_str());
    std::printf("Expected shape: two-stage detectors show std an order of magnitude\n"
                "above YOLOv5's, and higher mAP on both datasets (the accuracy/stability\n"
                "trade-off motivating LOTUS).\n");
    return 0;
}
