// Fleet routing comparison: does thermally-informed placement beat blind
// placement at the pool level?
//
// "Play It Cool" argues that shifting work between compute resources
// prevents throttling before it happens; LOTUS provides the per-device
// control. This bench runs the `serve_fleet_saturation` registry scenario
// -- 4 Orin Nanos in a hot aisle with an airflow gradient, offered ~30%
// more Poisson load than the pool sustains -- and compares the routing
// policies under per-device LOTUS governors and under the Linux
// `performance` governor.
//
// The bench FAILS (non-zero exit; it runs as a CTest smoke) unless:
//
//  * at least one of `thermal_aware` / `lotus_fleet` beats `round_robin`
//    on fleet deadline-miss rate at an equal-or-lower fleet peak
//    temperature (both under LOTUS governors), and
//  * a fleet run is byte-identical at --jobs 1 and --jobs 4 (checked on
//    the pretrain-free governor arms so the check stays cheap; the
//    FleetEngine paths exercised are identical).

#include <cstdio>
#include <string>

#include "common.hpp"

using namespace lotus;

namespace {

/// Aggregate metrics of one fleet episode.
struct FleetPoint {
    double miss_rate = 0.0;
    double peak_temp_c = 0.0;
    bool found = false;
};

FleetPoint point_of(const std::vector<bench::EpisodeResult>& results,
                    const std::string& arm) {
    for (const auto& r : results) {
        if (r.arm != arm || !r.fleet_trace) continue;
        return {r.fleet_trace->aggregate().miss_rate, r.fleet_trace->peak_temp_c(), true};
    }
    return {};
}

/// --jobs byte-identity on the fleet engine: a two-arm, pretrain-free copy
/// of the scenario (kernel-governor arms only) rendered to JSON under
/// serial and parallel harnesses must match byte for byte.
bool jobs_identity_check(const bench::Scenario& sc) {
    harness::Scenario subset(sc.config);
    subset.name = sc.name;
    subset.title = sc.title + " (jobs identity subset)";
    subset.fleet = sc.fleet;
    subset.arms.push_back(harness::fleet_arm(harness::performance_arm(), "round_robin"));
    subset.arms.push_back(
        harness::fleet_arm(harness::default_arm(sc.config.device_spec), "lotus_fleet"));

    const harness::ExperimentHarness serial({.jobs = 1, .seed = 42});
    const harness::ExperimentHarness parallel({.jobs = 4, .seed = 42});
    const auto a = harness::scenario_json(subset, serial.run(subset));
    const auto b = harness::scenario_json(subset, parallel.run(subset));
    if (a != b) {
        std::printf("FAIL: fleet run is not byte-identical across --jobs counts\n");
        return false;
    }
    std::printf("jobs identity: --jobs 1 == --jobs 4 (%zu bytes of JSON)\n\n", a.size());
    return true;
}

} // namespace

int main() {
    const auto& sc = bench::scenario("serve_fleet_saturation");
    std::printf("Fleet routing under saturation -- %zu devices, %zu streams, router "
                "shoot-out\n",
                sc.fleet->devices.size(), sc.fleet->streams.size());
    std::printf("(%zu requests/stream; per-device LOTUS agents pre-trained for %zu "
                "frames each)\n\n",
                sc.fleet->streams.front().requests, sc.fleet->pretrain_iterations);

    if (!jobs_identity_check(sc)) return 1;

    const auto results = bench::run(sc);
    harness::print_fleet_table(sc.title, results);
    bench::maybe_dump_csv(sc.name, results);

    const auto rr = point_of(results, "Lotus+round_robin");
    const auto ta = point_of(results, "Lotus+thermal_aware");
    const auto lf = point_of(results, "Lotus+lotus_fleet");
    if (!rr.found || !ta.found || !lf.found) {
        std::printf("FAIL: expected router arms missing from the scenario\n");
        return 1;
    }

    std::printf("\nGate: thermal_aware or lotus_fleet must beat round_robin on miss "
                "rate at an\nequal-or-lower fleet peak temperature (all under "
                "per-device LOTUS governors).\n");
    std::printf("  round_robin:   miss %.1f%%, peak %.1f C\n", rr.miss_rate * 100.0,
                rr.peak_temp_c);
    std::printf("  thermal_aware: miss %.1f%%, peak %.1f C\n", ta.miss_rate * 100.0,
                ta.peak_temp_c);
    std::printf("  lotus_fleet:   miss %.1f%%, peak %.1f C\n", lf.miss_rate * 100.0,
                lf.peak_temp_c);

    const auto wins = [&](const FleetPoint& p) {
        return p.miss_rate < rr.miss_rate && p.peak_temp_c <= rr.peak_temp_c + 1e-9;
    };
    if (!wins(ta) && !wins(lf)) {
        std::printf("FAIL: neither thermally-informed router beat round_robin\n");
        return 1;
    }
    std::printf("PASS: %s wins on both axes\n", wins(lf) ? "lotus_fleet" : "thermal_aware");

    std::printf("\nShape targets (absolute numbers differ; the substrate is a "
                "simulator):\n"
                "  placement beats blind rotation once the pool is thermally\n"
                "  asymmetric: the hot corner trips under round-robin load it\n"
                "  cannot dissipate, while headroom-aware routing gives it only\n"
                "  the load it can. Per-device LOTUS keeps every die cooler than\n"
                "  the `performance` governor at a fraction of the misses a\n"
                "  throttle-oscillating pool would suffer.\n");
    return 0;
}
