// Fig. 2 reproduction: inference latency of the second stage as a function
// of the RPN proposal count, for FasterRCNN and MaskRCNN, at a fixed
// CPU/GPU frequency (the paper pins the frequency and scatters per-image
// measurements; we sweep the proposal count directly).
//
// Each sweep point is one cold-start single-frame episode of the
// fig2_*_sweep probe scenarios; the harness runs all points in parallel.

#include <algorithm>
#include <cstdio>

#include "common.hpp"

using namespace lotus;

namespace {

void sweep(const char* scenario_name) {
    const auto& sc = bench::scenario(scenario_name);
    const auto results = bench::run(sc);

    // Probe episodes are exactly one frame each; the pinned levels and the
    // proposal counts come from the executed traces, not from re-stating the
    // registry's constants.
    const auto& spec = sc.config.device_spec;
    const auto& first = results.front().trace[0];
    std::printf("%s (CPU pinned to %.0f MHz, GPU to %.0f MHz)\n",
                detector::to_string(sc.config.detector),
                spec.cpu.opp.freq(first.cpu_level) / 1e6,
                spec.gpu.opp.freq(first.gpu_level) / 1e6);
    util::TextTable table({"#proposals", "stage2 (ms)", "stage1 (ms)", "total (ms)",
                           "stage2 share (%)"});
    std::vector<double> ys;
    int max_proposals = 0;
    for (const auto& r : results) {
        const auto& row = r.trace[0];
        table.add_row({
            std::to_string(row.proposals),
            util::format_double(row.stage2_s * 1e3, 2),
            util::format_double(row.stage1_s * 1e3, 2),
            util::format_double(row.latency_s * 1e3, 2),
            util::format_double(100.0 * row.stage2_s / row.latency_s, 1),
        });
        ys.push_back(row.stage2_s * 1e3);
        max_proposals = std::max(max_proposals, row.proposals);
    }
    std::printf("%s", table.render().c_str());

    util::AsciiChart chart(100, 12);
    chart.add_series({"stage2 latency", ys});
    std::printf("%s\n",
                chart.render("stage-2 latency vs proposals (x: 0.." +
                                 std::to_string(max_proposals) + ")",
                             "ms")
                    .c_str());
}

} // namespace

int main() {
    std::printf("Fig. 2 -- second-stage latency vs number of proposals\n\n");
    // Axis ranges follow the paper's panels: FasterRCNN 0..600, MaskRCNN 0..300.
    sweep("fig2_frcnn_sweep");
    sweep("fig2_mrcnn_sweep");
    std::printf("Expected shape: near-linear growth; the MaskRCNN slope (per-proposal\n"
                "mask head) is several times the FasterRCNN slope, so its panel reaches\n"
                "~200 ms at 300 proposals while FasterRCNN reaches ~100 ms at 600.\n");
    return 0;
}
