// Fig. 2 reproduction: inference latency of the second stage as a function
// of the RPN proposal count, for FasterRCNN and MaskRCNN, at a fixed
// CPU/GPU frequency (the paper pins the frequency and scatters per-image
// measurements; we sweep the proposal count directly).

#include <cstdio>

#include "common.hpp"

using namespace lotus;

namespace {

void sweep(const detector::DetectorModel& model, int max_proposals, int step) {
    const auto spec = platform::orin_nano_spec();
    platform::EdgeDevice device(spec);
    runtime::InferenceEngine engine(device);
    // Fixed mid-ladder frequency as in the paper's profiling setup.
    governors::FixedGovernor governor(5, 3);

    std::printf("%s (CPU pinned to %.0f MHz, GPU to %.0f MHz)\n", model.name().c_str(),
                spec.cpu.opp.freq(5) / 1e6, spec.gpu.opp.freq(3) / 1e6);
    util::TextTable table({"#proposals", "stage2 (ms)", "stage1 (ms)", "total (ms)",
                           "stage2 share (%)"});
    std::vector<double> xs;
    std::vector<double> ys;
    for (int p = 0; p <= max_proposals; p += step) {
        workload::FrameSample frame;
        frame.proposals = p;
        frame.resolution_scale = 1.0;
        frame.complexity = 1.0;
        frame.jitter = 1.0;
        device.reset();
        engine.reset();
        const auto r = engine.run_frame(model, frame, governor, 10.0,
                                        static_cast<std::size_t>(p));
        table.add_row({
            std::to_string(p),
            util::format_double(r.stage2_s * 1e3, 2),
            util::format_double(r.stage1_s * 1e3, 2),
            util::format_double(r.latency_s * 1e3, 2),
            util::format_double(100.0 * r.stage2_s / r.latency_s, 1),
        });
        xs.push_back(static_cast<double>(p));
        ys.push_back(r.stage2_s * 1e3);
    }
    std::printf("%s", table.render().c_str());

    util::AsciiChart chart(100, 12);
    chart.add_series({"stage2 latency", ys});
    std::printf("%s\n",
                chart.render("stage-2 latency vs proposals (x: 0.." +
                                 std::to_string(max_proposals) + ")",
                             "ms")
                    .c_str());
}

} // namespace

int main() {
    std::printf("Fig. 2 -- second-stage latency vs number of proposals\n\n");
    // Axis ranges follow the paper's panels: FasterRCNN 0..600, MaskRCNN 0..300.
    sweep(detector::faster_rcnn_r50(), 600, 60);
    sweep(detector::mask_rcnn_r50(), 300, 30);
    std::printf("Expected shape: near-linear growth; the MaskRCNN slope (per-proposal\n"
                "mask head) is several times the FasterRCNN slope, so its panel reaches\n"
                "~200 ms at 300 proposals while FasterRCNN reaches ~100 ms at 600.\n");
    return 0;
}
