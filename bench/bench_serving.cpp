// Serving comparison: LOTUS vs the Linux governors under saturation.
//
// The paper evaluates governors one frame stream at a time; this bench asks
// the production question instead: with 8 Poisson camera streams offering
// ~30% more load than the device sustains, which governor loses the fewest
// deadlines -- and at what temperature? The `serve_saturation` registry
// scenario pits the stock kernel governors (default), the `performance`
// governor (max frequency, maximum heat), zTT and LOTUS against the same
// request timeline under deadline-aware EDF admission control.
//
// Shed requests count as SLO violations: admission control may not launder
// the miss rate.

#include <cstdio>

#include "common.hpp"

using namespace lotus;

int main() {
    const auto& sc = bench::scenario("serve_saturation");
    std::printf("Serving under saturation -- %zu streams, scheduler %s\n",
                sc.serving->streams.size(), sc.serving->scheduler.c_str());
    std::printf("(%zu requests/stream; learning governors pre-trained for %zu frames)\n\n",
                sc.serving->streams.front().requests, sc.serving->pretrain_iterations);

    const auto results = bench::run(sc);
    harness::print_serving_table(sc.title, results);
    bench::maybe_dump_csv(sc.name, results);

    std::printf("\nShape targets (absolute numbers differ; the substrate is a simulator):\n"
                "  miss rate: Lotus < performance and Lotus < default -- max frequency\n"
                "  heat-soaks the device into throttling, which a thermally-aware pace\n"
                "  avoids; peak temperature: Lotus <= performance; throughput: Lotus\n"
                "  within a few percent of the best arm.\n");
    return 0;
}
