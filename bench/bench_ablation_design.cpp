// Ablation bench: the design choices LOTUS argues for (Secs. 4.2-4.3.5),
// each removed in isolation on the hardest static cell (Orin Nano +
// FasterRCNN + VisDrone2019):
//
//   * full LOTUS            -- two decisions, one slimmable net, eps_t decay
//   * frame-start only      -- zTT's decision timing (cannot see proposals)
//   * post-RPN only         -- never accelerates stage 1 (the mean driver)
//   * two separate networks -- severs the correlation between the two
//                              decisions of a frame (Sec. 4.3.4's argument
//                              for the slimmable single net)
//   * zTT-style cool-down   -- random-lower forever when hot; the agent
//                              never learns hot-state behaviour (Sec. 4.3.5)

#include <cstdio>

#include "common.hpp"

using namespace lotus;

int main() {
    const auto spec = platform::orin_nano_spec();
    std::printf("Ablation -- LOTUS design choices on Orin Nano + FasterRCNN + "
                "VisDrone2019 (%zu iterations)\n\n",
                bench::orin_iterations());

    auto cfg = runtime::static_experiment(spec, detector::DetectorKind::faster_rcnn,
                                          "VisDrone2019", bench::orin_iterations(),
                                          bench::pretrain_iterations(), /*seed=*/81);

    const auto base = [&] {
        core::LotusConfig c;
        c.reward.t_thres_celsius = platform::reward_threshold_celsius(spec);
        c.seed = 17;
        return c;
    };

    std::vector<bench::Arm> arms;
    arms.push_back(bench::lotus_arm_with(spec, "Lotus(full)", base()));
    {
        auto c = base();
        c.decision_mode = core::DecisionMode::frame_start_only;
        arms.push_back(bench::lotus_arm_with(spec, "frame-start-only", c));
    }
    {
        auto c = base();
        c.decision_mode = core::DecisionMode::post_rpn_only;
        arms.push_back(bench::lotus_arm_with(spec, "post-rpn-only", c));
    }
    {
        auto c = base();
        c.use_two_networks = true;
        arms.push_back(bench::lotus_arm_with(spec, "two-networks", c));
    }
    {
        auto c = base();
        c.ztt_style_cooldown = true;
        arms.push_back(bench::lotus_arm_with(spec, "ztt-cooldown", c));
    }
    {
        auto c = base();
        c.double_dqn = true;
        arms.push_back(bench::lotus_arm_with(spec, "double-dqn", c));
    }

    auto results = bench::run_arms(cfg, std::move(arms));
    bench::print_table_block("ablation arms", results);
    bench::maybe_dump_csv("ablation", results);

    std::printf("\nExpected shape: the full design attains the lowest sigma_l at\n"
                "comparable or better mean latency; frame-start-only loses variance\n"
                "control (no proposal signal); post-rpn-only loses mean latency (stage 1\n"
                "dominates); two-networks and ztt-cooldown converge worse or run hotter.\n");
    return 0;
}
