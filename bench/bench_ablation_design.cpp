// Ablation bench: the design choices LOTUS argues for (Secs. 4.2-4.3.5),
// each removed in isolation on the hardest static cell (Orin Nano +
// FasterRCNN + VisDrone2019):
//
//   * full LOTUS            -- two decisions, one slimmable net, eps_t decay
//   * frame-start only      -- zTT's decision timing (cannot see proposals)
//   * post-RPN only         -- never accelerates stage 1 (the mean driver)
//   * two separate networks -- severs the correlation between the two
//                              decisions of a frame (Sec. 4.3.4's argument
//                              for the slimmable single net)
//   * zTT-style cool-down   -- random-lower forever when hot; the agent
//                              never learns hot-state behaviour (Sec. 4.3.5)
//
// The arm set lives in the registry's "ablation_design" scenario; the six
// episodes run concurrently on the harness pool.

#include <cstdio>

#include "common.hpp"

using namespace lotus;

int main() {
    const auto& sc = bench::scenario("ablation_design");
    std::printf("Ablation -- LOTUS design choices on Orin Nano + FasterRCNN + "
                "VisDrone2019 (%zu iterations)\n\n",
                sc.config.iterations);

    const auto results = bench::run(sc);
    bench::print_table_block("ablation arms", results);
    bench::maybe_dump_csv(sc.name, results);

    std::printf("\nExpected shape: the full design attains the lowest sigma_l at\n"
                "comparable or better mean latency; frame-start-only loses variance\n"
                "control (no proposal signal); post-rpn-only loses mean latency (stage 1\n"
                "dominates); two-networks and ztt-cooldown converge worse or run hotter.\n");
    return 0;
}
