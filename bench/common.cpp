#include "common.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

namespace lotus::bench {

namespace {

bool env_flag(const char* name) {
    const char* v = std::getenv(name);
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::string sanitize(std::string s) {
    for (auto& c : s) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' || c == '_')) {
            c = '_';
        }
    }
    return s;
}

} // namespace

Arm default_arm(const platform::DeviceSpec& spec) {
    const bool orin = spec.name.find("orin") != std::string::npos;
    return Arm{
        .name = "default",
        .make =
            [orin]() -> std::unique_ptr<governors::Governor> {
            return std::make_unique<governors::DefaultGovernor>(
                orin ? governors::DefaultGovernor::orin_nano()
                     : governors::DefaultGovernor::mi11_lite());
        },
        .paper = std::nullopt,
    };
}

Arm ztt_arm(const platform::DeviceSpec& spec, std::uint64_t seed) {
    const auto cpu_levels = spec.cpu.opp.num_levels();
    const auto gpu_levels = spec.gpu.opp.num_levels();
    const double t_thres = platform::reward_threshold_celsius(spec);
    return Arm{
        .name = "zTT",
        .make =
            [=]() -> std::unique_ptr<governors::Governor> {
            governors::ZttConfig cfg;
            cfg.t_thres_celsius = t_thres;
            cfg.seed = seed;
            return std::make_unique<governors::ZttGovernor>(cpu_levels, gpu_levels, cfg);
        },
        .paper = std::nullopt,
    };
}

Arm lotus_arm(const platform::DeviceSpec& spec, std::uint64_t seed) {
    core::LotusConfig cfg;
    cfg.reward.t_thres_celsius = platform::reward_threshold_celsius(spec);
    cfg.seed = seed;
    return lotus_arm_with(spec, "Lotus", cfg);
}

Arm lotus_arm_with(const platform::DeviceSpec& spec, const std::string& label,
                   core::LotusConfig cfg) {
    const auto cpu_levels = spec.cpu.opp.num_levels();
    const auto gpu_levels = spec.gpu.opp.num_levels();
    if (cfg.reward.t_thres_celsius >= platform::throttle_bound_celsius(spec)) {
        cfg.reward.t_thres_celsius = platform::reward_threshold_celsius(spec);
    }
    return Arm{
        .name = label,
        .make =
            [=]() -> std::unique_ptr<governors::Governor> {
            return std::make_unique<core::LotusAgent>(cpu_levels, gpu_levels, cfg);
        },
        .paper = std::nullopt,
    };
}

std::vector<ArmResult> run_arms(const runtime::ExperimentConfig& config,
                                std::vector<Arm> arms) {
    std::vector<ArmResult> results(arms.size());
    std::vector<std::thread> threads;
    threads.reserve(arms.size());
    for (std::size_t i = 0; i < arms.size(); ++i) {
        threads.emplace_back([&, i] {
            auto governor = arms[i].make();
            // Kernel governors neither learn nor need pre-training; skip the
            // warm-up phase for them to keep the harness fast.
            auto cfg = config;
            if (governor->decision_overhead_s() == 0.0) cfg.pretrain_iterations = 0;
            runtime::ExperimentRunner runner(cfg);
            results[i] = ArmResult{arms[i].name, runner.run(*governor), arms[i].paper};
        });
    }
    for (auto& t : threads) t.join();
    return results;
}

std::size_t orin_iterations() {
    return env_flag("LOTUS_BENCH_FAST") ? 600 : 3000;
}

std::size_t mi11_iterations() {
    return env_flag("LOTUS_BENCH_FAST") ? 300 : 1000;
}

std::size_t pretrain_iterations() {
    return env_flag("LOTUS_BENCH_FAST") ? 500 : 2500;
}

std::size_t mi11_pretrain_iterations() {
    return env_flag("LOTUS_BENCH_FAST") ? 500 : 6000;
}

void print_figure(const std::string& title, const std::vector<ArmResult>& results,
                  double throttle_bound_c, double constraint_ms) {
    std::printf("%s\n%s\n", title.c_str(), std::string(title.size(), '=').c_str());

    util::AsciiChart temp_chart(110, 14);
    for (const auto& r : results) {
        temp_chart.add_series({r.name, util::downsample(r.trace.device_temps(), 110)});
    }
    temp_chart.add_reference_line(throttle_bound_c, "throttling bound");
    std::printf("%s\n",
                temp_chart.render("Device temperature over iterations", "deg C").c_str());

    util::AsciiChart lat_chart(110, 14);
    for (const auto& r : results) {
        lat_chart.add_series({r.name, util::downsample(r.trace.latencies_ms(), 110)});
    }
    lat_chart.add_reference_line(constraint_ms, "latency constraint");
    std::printf("%s\n", lat_chart.render("Inference latency over iterations", "ms").c_str());
}

void print_table_block(const std::string& heading, const std::vector<ArmResult>& results) {
    util::TextTable table({"method", "l-bar (ms)", "sigma_l (ms)", "R_L (%)",
                           "T_dev (C)", "P (W)", "throttled (%)", "paper l-bar",
                           "paper sigma", "paper R_L"});
    for (const auto& r : results) {
        const auto s = r.trace.summary();
        std::vector<std::string> row{
            r.name,
            util::format_double(s.mean_latency_s * 1e3, 1),
            util::format_double(s.std_latency_s * 1e3, 1),
            util::format_double(s.satisfaction_rate * 100.0, 1),
            util::format_double(s.mean_device_temp, 1),
            util::format_double(s.mean_power_w, 1),
            util::format_double(s.throttled_fraction * 100.0, 1),
        };
        if (r.paper) {
            row.push_back(util::format_double(r.paper->mean_ms, 1));
            row.push_back(util::format_double(r.paper->std_ms, 1));
            row.push_back(util::format_double(r.paper->satisfaction * 100.0, 1));
        } else {
            row.insert(row.end(), {"-", "-", "-"});
        }
        table.add_row(std::move(row));
    }
    std::printf("%s", table.render(heading).c_str());
}

void maybe_dump_csv(const std::string& stem, const std::vector<ArmResult>& results) {
    if (!env_flag("LOTUS_BENCH_CSV")) return;
    std::filesystem::create_directories("bench_out");
    for (const auto& r : results) {
        const auto path = "bench_out/" + sanitize(stem) + "_" + sanitize(r.name) + ".csv";
        r.trace.write_csv(path);
        std::printf("[csv] wrote %s (%zu rows)\n", path.c_str(), r.trace.size());
    }
}

} // namespace lotus::bench
