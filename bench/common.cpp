#include "common.hpp"

#include <cstdlib>

namespace lotus::bench {

namespace {

bool env_flag(const char* name) {
    const char* v = std::getenv(name);
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

const harness::ExperimentHarness& shared_harness() {
    static const harness::ExperimentHarness h([] {
        harness::HarnessConfig cfg;
        if (const char* jobs = std::getenv("LOTUS_BENCH_JOBS")) {
            const auto v = std::strtoull(jobs, nullptr, 10);
            if (v > 0) cfg.jobs = static_cast<std::size_t>(v);
        }
        return cfg;
    }());
    return h;
}

} // namespace

const Scenario& scenario(const std::string& name) {
    return harness::ScenarioRegistry::instance().at(name);
}

std::vector<EpisodeResult> run(const Scenario& s) { return shared_harness().run(s); }

std::vector<EpisodeResult> run(const std::string& name) { return run(scenario(name)); }

void print_figure(const std::string& title, const std::vector<EpisodeResult>& results) {
    harness::print_figure(title, results);
}

void print_table_block(const std::string& heading,
                       const std::vector<EpisodeResult>& results) {
    harness::print_summary_table(heading, results);
}

void maybe_dump_csv(const std::string& stem, const std::vector<EpisodeResult>& results) {
    if (!env_flag("LOTUS_BENCH_CSV")) return;
    harness::write_csv_traces("bench_out", stem, results);
}

} // namespace lotus::bench
