// Fig. 4 reproduction: device temperature and inference latency over 3,000
// iterations on the Jetson Orin Nano running FasterRCNN, comparing the
// default governors, zTT and LOTUS on (a) VisDrone2019 and (b) KITTI.

#include <cstdio>

#include "common.hpp"

using namespace lotus;

int main() {
    std::printf("Fig. 4 -- Jetson Orin Nano + FasterRCNN: default vs zTT vs Lotus\n\n");

    for (const char* name : {"fig4_visdrone", "fig4_kitti"}) {
        const auto& sc = bench::scenario(name);
        const auto results = bench::run(sc);
        bench::print_figure(sc.title, results);
        bench::print_table_block("summary", results);
        bench::maybe_dump_csv(sc.name, results);
        std::printf("\n");
    }
    std::printf("Expected shape: default ramps hot and oscillates against the throttling\n"
                "bound with wide latency swings; zTT and Lotus stay below it, with Lotus\n"
                "holding the lowest, most stable latency band.\n");
    return 0;
}
