// Fig. 4 reproduction: device temperature and inference latency over 3,000
// iterations on the Jetson Orin Nano running FasterRCNN, comparing the
// default governors, zTT and LOTUS on (a) VisDrone2019 and (b) KITTI.

#include <cstdio>

#include "common.hpp"

using namespace lotus;

int main() {
    const auto spec = platform::orin_nano_spec();
    std::printf("Fig. 4 -- Jetson Orin Nano + FasterRCNN: default vs zTT vs Lotus\n\n");

    for (const char* dataset : {"VisDrone2019", "KITTI"}) {
        auto cfg = runtime::static_experiment(spec, detector::DetectorKind::faster_rcnn,
                                              dataset, bench::orin_iterations(),
                                              bench::pretrain_iterations(),
                                              /*seed=*/2024);
        auto results = bench::run_arms(
            cfg, {bench::default_arm(spec), bench::ztt_arm(spec), bench::lotus_arm(spec)});

        const double constraint_ms = cfg.schedule.at(0).latency_constraint_s * 1e3;
        bench::print_figure(std::string("Fig. 4 (") + dataset + ")", results,
                            platform::throttle_bound_celsius(spec), constraint_ms);
        bench::print_table_block("summary", results);
        bench::maybe_dump_csv(std::string("fig4_") + dataset, results);
        std::printf("\n");
    }
    std::printf("Expected shape: default ramps hot and oscillates against the throttling\n"
                "bound with wide latency swings; zTT and Lotus stay below it, with Lotus\n"
                "holding the lowest, most stable latency band.\n");
    return 0;
}
