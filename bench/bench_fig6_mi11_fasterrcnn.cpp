// Fig. 6 reproduction: Mi 11 Lite + FasterRCNN traces over 1,000 iterations
// (default vs zTT vs LOTUS) on VisDrone2019 (a) and KITTI (b). The phone
// operates in a skin-limited 28-43 degC envelope with second-scale frame
// latencies.

#include <cstdio>

#include "common.hpp"

using namespace lotus;

int main() {
    const auto spec = platform::mi11_lite_spec();
    std::printf("Fig. 6 -- Mi 11 Lite + FasterRCNN: default vs zTT vs Lotus\n\n");

    for (const char* dataset : {"VisDrone2019", "KITTI"}) {
        auto cfg = runtime::static_experiment(spec, detector::DetectorKind::faster_rcnn,
                                              dataset, bench::mi11_iterations(),
                                              bench::mi11_pretrain_iterations(),
                                              /*seed=*/2026);
        auto results = bench::run_arms(
            cfg, {bench::default_arm(spec), bench::ztt_arm(spec), bench::lotus_arm(spec)});

        const double constraint_ms = cfg.schedule.at(0).latency_constraint_s * 1e3;
        bench::print_figure(std::string("Fig. 6 (") + dataset + ")", results,
                            platform::throttle_bound_celsius(spec), constraint_ms);
        bench::print_table_block("summary", results);
        bench::maybe_dump_csv(std::string("fig6_") + dataset, results);
        std::printf("\n");
    }
    std::printf("Expected shape: the same ordering as the Jetson figures inside a much\n"
                "cooler band (~28-43 C) and ~3-4x larger absolute latencies.\n");
    return 0;
}
