// Fig. 6 reproduction: Mi 11 Lite + FasterRCNN traces over 1,000 iterations
// (default vs zTT vs LOTUS) on VisDrone2019 (a) and KITTI (b). The phone
// operates in a skin-limited 28-43 degC envelope with second-scale frame
// latencies.

#include <cstdio>

#include "common.hpp"

using namespace lotus;

int main() {
    std::printf("Fig. 6 -- Mi 11 Lite + FasterRCNN: default vs zTT vs Lotus\n\n");

    for (const char* name : {"fig6_visdrone", "fig6_kitti"}) {
        const auto& sc = bench::scenario(name);
        const auto results = bench::run(sc);
        bench::print_figure(sc.title, results);
        bench::print_table_block("summary", results);
        bench::maybe_dump_csv(sc.name, results);
        std::printf("\n");
    }
    std::printf("Expected shape: the same ordering as the Jetson figures inside a much\n"
                "cooler band (~28-43 C) and ~3-4x larger absolute latencies.\n");
    return 0;
}
