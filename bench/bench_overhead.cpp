// Sec. 4.4.2 reproduction: overhead analysis of the LOTUS agent.
//
// The paper reports, per inference: Q-network forward 0.42 ms (on an RTX
// 2080Ti), 1.92 ms per socket message, 8.52 ms total across the two
// decisions. Two views here:
//
//  * wall-clock microbenchmarks of *our* Q-network and decision path (the
//    absolute values depend on the host CPU; the point is that the compute
//    is sub-millisecond, dwarfed by the detector's hundreds of
//    milliseconds);
//  * the `overhead_analysis` registry scenario run on the shared
//    ExperimentHarness: the modelled per-decision communication cost that
//    the engine charges to every frame, as a share of the measured frame
//    latency, for zTT (one decision) vs LOTUS (two decisions).
//
// The wall-clock numbers are inherently non-deterministic; everything
// driven through the harness is seed-reproducible like every other bench.

// PR 3 adds a second kind of overhead analysis: the cost of the simulator
// itself. The single time-advance authority steps the RC thermal network
// with a closed-form exponential solution between events instead of fixed
// 20 ms slicing with 5 ms Euler sub-steps; the stepper comparison below
// runs the serve_saturation scenario under both integrators and FAILS the
// bench (non-zero exit, it runs as a CTest smoke) unless the closed form
// spends >= 3x fewer integration steps while the serving-level latency and
// temperature metrics stay within 1% of the slice-based reference.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>

#include "common.hpp"

using namespace lotus;

namespace {

/// Optimization barrier for the microbench loops.
volatile double g_sink = 0.0;

template <typename F>
double mean_us_per_call(F&& fn, int calls) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < calls; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(t1 - t0).count() / calls;
}

rl::MlpConfig paper_qnet_config() {
    // 4-layer MLP over the 7-feature state and the Orin's 48 joint actions.
    rl::MlpConfig cfg;
    cfg.dims = {core::kStateDim, 128, 128, 128, 48};
    cfg.slim_input = true;
    cfg.seed = 1;
    return cfg;
}

void microbench() {
    const int calls = harness::fast_mode() ? 200 : 2000;
    util::TextTable table({"operation", "mean (us/call)"});

    {
        rl::SlimmableMlp net(paper_qnet_config());
        const std::vector<double> x(core::kStateDim, 0.5);
        table.add_row({"Q-network forward, width 1.0",
                       util::format_double(mean_us_per_call(
                           [&] { g_sink = net.forward(x, 1.0)[0]; }, calls), 2)});
        table.add_row({"Q-network forward, width 0.75",
                       util::format_double(mean_us_per_call(
                           [&] { g_sink = net.forward(x, 0.75)[0]; }, calls), 2)});
    }
    {
        rl::DqnConfig dqn_cfg;
        dqn_cfg.batch_size = 32;
        rl::DqnCore dqn(paper_qnet_config(), dqn_cfg);
        rl::ReplayBuffer buffer(256);
        util::Rng rng(3);
        for (int i = 0; i < 256; ++i) {
            rl::Transition t;
            t.state = std::vector<double>(core::kStateDim, rng.uniform());
            t.action = static_cast<int>(rng.uniform_int(0, 47));
            t.reward = rng.uniform(-1, 2);
            t.next_state = std::vector<double>(core::kStateDim, rng.uniform());
            t.width_state = (i % 2 == 0) ? 0.75 : 1.0;
            t.width_next = (i % 2 == 0) ? 1.0 : 0.75;
            buffer.push(std::move(t));
        }
        table.add_row({"DQN train step, batch 32",
                       util::format_double(mean_us_per_call(
                           [&] { g_sink = dqn.train_step(buffer, rng, 1); },
                           calls / 10 + 1), 2)});
    }
    {
        // Both per-frame decisions including state encoding and action
        // decode -- the client-visible compute cost of the agent (excluding
        // the modelled socket latency, which the engine charges as dead
        // time).
        core::LotusConfig cfg;
        cfg.train_online = false;
        core::LotusAgent agent(8, 6, cfg);
        governors::Observation start;
        start.cpu_temp = 60;
        start.gpu_temp = 70;
        start.cpu_level = 5;
        start.gpu_level = 3;
        start.cpu_levels = 8;
        start.gpu_levels = 6;
        start.latency_constraint_s = 0.45;
        start.last_frame_latency_s = 0.4;
        auto rpn = start;
        rpn.proposals = 200;
        rpn.elapsed_in_frame_s = 0.3;
        governors::FrameOutcome outcome;
        outcome.latency_s = 0.4;
        outcome.latency_constraint_s = 0.45;
        outcome.cpu_temp = 60;
        outcome.gpu_temp = 70;
        table.add_row({"LOTUS decision pair (inference only)",
                       util::format_double(mean_us_per_call(
                           [&] {
                               g_sink = agent.on_frame_start(start).has_request ? 1.0 : 0.0;
                               g_sink = agent.on_post_rpn(rpn).has_request ? 1.0 : 0.0;
                               agent.on_frame_end(outcome);
                           },
                           calls), 2)});
    }
    std::printf("%s", table.render("wall-clock microbenchmarks (host CPU)").c_str());
    std::printf("(paper, Sec. 4.4.2: 0.42 ms per Q-network forward on an RTX 2080Ti)\n\n");
}

/// Relative deviation, safe around zero.
double rel_dev(double value, double reference) {
    const double denom = std::max(std::abs(reference), 1e-9);
    return std::abs(value - reference) / denom;
}

struct StepperRun {
    serving::ServingTrace trace;
    serving::ServingSummary agg;
};

StepperRun run_stepper(const serving::ServingConfig& base, platform::ThermalStepping mode,
                       const std::string& governor_name) {
    auto cfg = base;
    cfg.device_spec.thermal_stepping = mode;
    cfg.pretrain_iterations = 0; // deterministic baselines need no warm-up
    std::unique_ptr<governors::Governor> governor;
    if (governor_name == "default") {
        governor = std::make_unique<governors::DefaultGovernor>(
            governors::DefaultGovernor::orin_nano());
    } else {
        governor = std::make_unique<governors::PerformanceGovernor>();
    }
    const serving::ServingEngine engine(cfg);
    auto trace = engine.run(*governor);
    auto agg = trace.aggregate();
    return {std::move(trace), std::move(agg)};
}

/// Compare closed-form vs Euler slicing on serve_saturation; returns false
/// (failing the bench) if the acceptance bar is missed.
bool stepper_comparison() {
    const auto& sc = bench::scenario("serve_saturation");
    if (!sc.serving) {
        std::printf("serve_saturation is not a serving scenario?\n");
        return false;
    }

    bool ok = true;
    std::uint64_t total_euler = 0;
    std::uint64_t total_closed = 0;
    util::TextTable table({"governor", "steps (euler)", "steps (closed)", "reduction",
                           "max metric dev (%)"});
    for (const std::string gov : {"default", "performance"}) {
        const auto euler =
            run_stepper(*sc.serving, platform::ThermalStepping::euler_slice, gov);
        const auto closed =
            run_stepper(*sc.serving, platform::ThermalStepping::closed_form, gov);
        total_euler += euler.trace.thermal_steps();
        total_closed += closed.trace.thermal_steps();

        const double reduction = static_cast<double>(euler.trace.thermal_steps()) /
                                 static_cast<double>(closed.trace.thermal_steps());
        // Per-frame latency/temperature metrics of the serving run; every
        // one must stay within 1% of the slice-based reference.
        const double devs[] = {
            rel_dev(closed.agg.p50_ms, euler.agg.p50_ms),
            rel_dev(closed.agg.p95_ms, euler.agg.p95_ms),
            rel_dev(closed.agg.mean_device_temp_c, euler.agg.mean_device_temp_c),
            rel_dev(closed.agg.peak_device_temp_c, euler.agg.peak_device_temp_c),
        };
        double max_dev = 0.0;
        for (const double d : devs) max_dev = std::max(max_dev, d);

        table.add_row({gov, std::to_string(euler.trace.thermal_steps()),
                       std::to_string(closed.trace.thermal_steps()),
                       util::format_double(reduction, 1) + "x",
                       util::format_double(max_dev * 100.0, 3)});
        if (max_dev > 0.01) {
            std::printf("FAIL: %s: metric deviation %.3f%% > 1%%\n", gov.c_str(),
                        max_dev * 100.0);
            ok = false;
        }
    }
    // The scenario-level bar: >= 3x fewer integration steps across the
    // compared arms. (The 20 ms-tick kernel governor alone is structurally
    // capped near 4x -- its tick deadlines force 20 ms segments -- while
    // frame-grained governors reach 7x+.)
    const double total_reduction =
        static_cast<double>(total_euler) / static_cast<double>(total_closed);
    table.add_row({"TOTAL", std::to_string(total_euler), std::to_string(total_closed),
                   util::format_double(total_reduction, 1) + "x", "-"});
    if (total_reduction < 3.0) {
        std::printf("FAIL: scenario step reduction %.2fx < 3x\n", total_reduction);
        ok = false;
    }
    std::printf("%s", table.render(
        "thermal stepper: closed-form exponential vs 20 ms slicing + 5 ms Euler "
        "(serve_saturation)").c_str());
    std::printf("Metrics compared: aggregate p50/p95 end-to-end latency, mean and peak\n"
                "device temperature. Both integrators are deterministic, so --jobs N\n"
                "output stays byte-identical (CI diffs serial vs parallel runs).\n\n");
    return ok;
}

} // namespace

int main() {
    std::printf("Sec. 4.4.2 -- overhead analysis of the agent\n\n");
    microbench();

    // Modelled communication overhead, via the registry scenario: how much
    // of each measured frame the engine charged to agent round-trips.
    const auto& sc = bench::scenario("overhead_analysis");
    const auto results = bench::run(sc);
    bench::maybe_dump_csv(sc.name, results);

    const double per_decision_ms = core::LotusConfig{}.decision_overhead_s * 1e3;
    util::TextTable table({"method", "decisions/frame", "charged overhead (ms)",
                           "mean frame (ms)", "overhead share (%)"});
    for (const auto& r : results) {
        const auto s = r.trace.summary();
        // zTT decides once per frame, LOTUS at frame start + post-RPN.
        const int decisions = (r.arm == "zTT") ? 1 : 2;
        const double overhead_ms = per_decision_ms * decisions;
        table.add_row({
            r.arm,
            std::to_string(decisions),
            util::format_double(overhead_ms, 2),
            util::format_double(s.mean_latency_s * 1e3, 1),
            util::format_double(100.0 * overhead_ms / (s.mean_latency_s * 1e3), 2),
        });
    }
    table.add_row({"(paper total)", "2", "8.52", "-", "-"});
    std::printf("%s", table.render(sc.title).c_str());
    std::printf("Expected shape: the agent costs a few ms per frame -- one to two percent\n"
                "of a several-hundred-ms detector inference, the paper's negligibility\n"
                "argument.\n\n");

    return stepper_comparison() ? 0 : 1;
}
