// Sec. 4.4.2 reproduction: overhead analysis of the LOTUS agent.
//
// The paper reports, per inference: Q-network forward 0.42 ms (on an RTX
// 2080Ti), 1.92 ms per socket message, 8.52 ms total across the two
// decisions. Two views here:
//
//  * wall-clock microbenchmarks of *our* Q-network and decision path (the
//    absolute values depend on the host CPU; the point is that the compute
//    is sub-millisecond, dwarfed by the detector's hundreds of
//    milliseconds);
//  * the `overhead_analysis` registry scenario run on the shared
//    ExperimentHarness: the modelled per-decision communication cost that
//    the engine charges to every frame, as a share of the measured frame
//    latency, for zTT (one decision) vs LOTUS (two decisions).
//
// The wall-clock numbers are inherently non-deterministic; everything
// driven through the harness is seed-reproducible like every other bench.

#include <chrono>
#include <cstdio>

#include "common.hpp"

using namespace lotus;

namespace {

/// Optimization barrier for the microbench loops.
volatile double g_sink = 0.0;

template <typename F>
double mean_us_per_call(F&& fn, int calls) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < calls; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(t1 - t0).count() / calls;
}

rl::MlpConfig paper_qnet_config() {
    // 4-layer MLP over the 7-feature state and the Orin's 48 joint actions.
    rl::MlpConfig cfg;
    cfg.dims = {core::kStateDim, 128, 128, 128, 48};
    cfg.slim_input = true;
    cfg.seed = 1;
    return cfg;
}

void microbench() {
    const int calls = harness::fast_mode() ? 200 : 2000;
    util::TextTable table({"operation", "mean (us/call)"});

    {
        rl::SlimmableMlp net(paper_qnet_config());
        const std::vector<double> x(core::kStateDim, 0.5);
        table.add_row({"Q-network forward, width 1.0",
                       util::format_double(mean_us_per_call(
                           [&] { g_sink = net.forward(x, 1.0)[0]; }, calls), 2)});
        table.add_row({"Q-network forward, width 0.75",
                       util::format_double(mean_us_per_call(
                           [&] { g_sink = net.forward(x, 0.75)[0]; }, calls), 2)});
    }
    {
        rl::DqnConfig dqn_cfg;
        dqn_cfg.batch_size = 32;
        rl::DqnCore dqn(paper_qnet_config(), dqn_cfg);
        rl::ReplayBuffer buffer(256);
        util::Rng rng(3);
        for (int i = 0; i < 256; ++i) {
            rl::Transition t;
            t.state = std::vector<double>(core::kStateDim, rng.uniform());
            t.action = static_cast<int>(rng.uniform_int(0, 47));
            t.reward = rng.uniform(-1, 2);
            t.next_state = std::vector<double>(core::kStateDim, rng.uniform());
            t.width_state = (i % 2 == 0) ? 0.75 : 1.0;
            t.width_next = (i % 2 == 0) ? 1.0 : 0.75;
            buffer.push(std::move(t));
        }
        table.add_row({"DQN train step, batch 32",
                       util::format_double(mean_us_per_call(
                           [&] { g_sink = dqn.train_step(buffer, rng, 1); },
                           calls / 10 + 1), 2)});
    }
    {
        // Both per-frame decisions including state encoding and action
        // decode -- the client-visible compute cost of the agent (excluding
        // the modelled socket latency, which the engine charges as dead
        // time).
        core::LotusConfig cfg;
        cfg.train_online = false;
        core::LotusAgent agent(8, 6, cfg);
        governors::Observation start;
        start.cpu_temp = 60;
        start.gpu_temp = 70;
        start.cpu_level = 5;
        start.gpu_level = 3;
        start.cpu_levels = 8;
        start.gpu_levels = 6;
        start.latency_constraint_s = 0.45;
        start.last_frame_latency_s = 0.4;
        auto rpn = start;
        rpn.proposals = 200;
        rpn.elapsed_in_frame_s = 0.3;
        governors::FrameOutcome outcome;
        outcome.latency_s = 0.4;
        outcome.latency_constraint_s = 0.45;
        outcome.cpu_temp = 60;
        outcome.gpu_temp = 70;
        table.add_row({"LOTUS decision pair (inference only)",
                       util::format_double(mean_us_per_call(
                           [&] {
                               g_sink = agent.on_frame_start(start).has_request ? 1.0 : 0.0;
                               g_sink = agent.on_post_rpn(rpn).has_request ? 1.0 : 0.0;
                               agent.on_frame_end(outcome);
                           },
                           calls), 2)});
    }
    std::printf("%s", table.render("wall-clock microbenchmarks (host CPU)").c_str());
    std::printf("(paper, Sec. 4.4.2: 0.42 ms per Q-network forward on an RTX 2080Ti)\n\n");
}

} // namespace

int main() {
    std::printf("Sec. 4.4.2 -- overhead analysis of the agent\n\n");
    microbench();

    // Modelled communication overhead, via the registry scenario: how much
    // of each measured frame the engine charged to agent round-trips.
    const auto& sc = bench::scenario("overhead_analysis");
    const auto results = bench::run(sc);
    bench::maybe_dump_csv(sc.name, results);

    const double per_decision_ms = core::LotusConfig{}.decision_overhead_s * 1e3;
    util::TextTable table({"method", "decisions/frame", "charged overhead (ms)",
                           "mean frame (ms)", "overhead share (%)"});
    for (const auto& r : results) {
        const auto s = r.trace.summary();
        // zTT decides once per frame, LOTUS at frame start + post-RPN.
        const int decisions = (r.arm == "zTT") ? 1 : 2;
        const double overhead_ms = per_decision_ms * decisions;
        table.add_row({
            r.arm,
            std::to_string(decisions),
            util::format_double(overhead_ms, 2),
            util::format_double(s.mean_latency_s * 1e3, 1),
            util::format_double(100.0 * overhead_ms / (s.mean_latency_s * 1e3), 2),
        });
    }
    table.add_row({"(paper total)", "2", "8.52", "-", "-"});
    std::printf("%s", table.render(sc.title).c_str());
    std::printf("Expected shape: the agent costs a few ms per frame -- one to two percent\n"
                "of a several-hundred-ms detector inference, the paper's negligibility\n"
                "argument.\n");
    return 0;
}
