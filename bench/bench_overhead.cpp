// Sec. 4.4.2 reproduction: overhead analysis of the LOTUS agent.
//
// The paper reports, per inference: Q-network forward 0.42 ms (on an RTX
// 2080Ti), 1.92 ms per socket message, 8.52 ms total across the two
// decisions. Here we micro-benchmark *our* Q-network at both widths (the
// absolute value depends on the host CPU; the point is that it is a
// sub-millisecond cost, dwarfed by the detector's hundreds of milliseconds),
// plus the simulator's per-frame cost so harness throughput is documented.

#include <benchmark/benchmark.h>

#include "lotus_repro.hpp"

using namespace lotus;

namespace {

rl::MlpConfig paper_qnet_config() {
    // 4-layer MLP over the 7-feature state and the Orin's 48 joint actions.
    rl::MlpConfig cfg;
    cfg.dims = {core::kStateDim, 128, 128, 128, 48};
    cfg.slim_input = true;
    cfg.seed = 1;
    return cfg;
}

void BM_QNetworkForwardFullWidth(benchmark::State& state) {
    rl::SlimmableMlp net(paper_qnet_config());
    const std::vector<double> x(core::kStateDim, 0.5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.forward(x, 1.0));
    }
}
BENCHMARK(BM_QNetworkForwardFullWidth);

void BM_QNetworkForwardReducedWidth(benchmark::State& state) {
    rl::SlimmableMlp net(paper_qnet_config());
    const std::vector<double> x(core::kStateDim, 0.5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.forward(x, 0.75));
    }
}
BENCHMARK(BM_QNetworkForwardReducedWidth);

void BM_QNetworkTrainBatch32(benchmark::State& state) {
    rl::DqnConfig dqn_cfg;
    dqn_cfg.batch_size = 32;
    rl::DqnCore dqn(paper_qnet_config(), dqn_cfg);
    rl::ReplayBuffer buffer(256);
    util::Rng rng(3);
    for (int i = 0; i < 256; ++i) {
        rl::Transition t;
        t.state = std::vector<double>(core::kStateDim, rng.uniform());
        t.action = static_cast<int>(rng.uniform_int(0, 47));
        t.reward = rng.uniform(-1, 2);
        t.next_state = std::vector<double>(core::kStateDim, rng.uniform());
        t.width_state = (i % 2 == 0) ? 0.75 : 1.0;
        t.width_next = (i % 2 == 0) ? 1.0 : 0.75;
        buffer.push(std::move(t));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(dqn.train_step(buffer, rng, 1));
    }
}
BENCHMARK(BM_QNetworkTrainBatch32);

void BM_AgentDecisionPair(benchmark::State& state) {
    // Both per-frame decisions including state encoding and action decode --
    // the client-visible compute cost of the agent (excluding the modelled
    // socket latency, which the engine charges as dead time).
    core::LotusConfig cfg;
    cfg.train_online = false;
    core::LotusAgent agent(8, 6, cfg);
    governors::Observation start;
    start.cpu_temp = 60;
    start.gpu_temp = 70;
    start.cpu_level = 5;
    start.gpu_level = 3;
    start.cpu_levels = 8;
    start.gpu_levels = 6;
    start.latency_constraint_s = 0.45;
    start.last_frame_latency_s = 0.4;
    auto rpn = start;
    rpn.proposals = 200;
    rpn.elapsed_in_frame_s = 0.3;
    governors::FrameOutcome outcome;
    outcome.latency_s = 0.4;
    outcome.latency_constraint_s = 0.45;
    outcome.cpu_temp = 60;
    outcome.gpu_temp = 70;

    for (auto _ : state) {
        benchmark::DoNotOptimize(agent.on_frame_start(start));
        benchmark::DoNotOptimize(agent.on_post_rpn(rpn));
        agent.on_frame_end(outcome);
    }
}
BENCHMARK(BM_AgentDecisionPair);

void BM_SimulatedFrame(benchmark::State& state) {
    // Harness throughput: one simulated FasterRCNN frame under a fixed
    // governor (thermal integration + work slicing included).
    platform::EdgeDevice device(platform::orin_nano_spec());
    runtime::InferenceEngine engine(device);
    const auto model = detector::faster_rcnn_r50();
    governors::FixedGovernor governor(5, 3);
    workload::FrameSample frame;
    frame.proposals = 150;
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(engine.run_frame(model, frame, governor, 0.45, i++));
    }
}
BENCHMARK(BM_SimulatedFrame);

} // namespace

BENCHMARK_MAIN();
