// Sec. 4.4.2 reproduction: overhead analysis of the LOTUS agent.
//
// The paper reports, per inference: Q-network forward 0.42 ms (on an RTX
// 2080Ti), 1.92 ms per socket message, 8.52 ms total across the two
// decisions. Two views here:
//
//  * wall-clock microbenchmarks of *our* Q-network and decision path (the
//    absolute values depend on the host CPU; the point is that the compute
//    is sub-millisecond, dwarfed by the detector's hundreds of
//    milliseconds);
//  * the `overhead_analysis` registry scenario run on the shared
//    ExperimentHarness: the modelled per-decision communication cost that
//    the engine charges to every frame, as a share of the measured frame
//    latency, for zTT (one decision) vs LOTUS (two decisions).
//
// The wall-clock numbers are inherently non-deterministic; everything
// driven through the harness is seed-reproducible like every other bench.

// PR 3 adds a second kind of overhead analysis: the cost of the simulator
// itself. The single time-advance authority steps the RC thermal network
// with a closed-form exponential solution between events instead of fixed
// 20 ms slicing with 5 ms Euler sub-steps; the stepper comparison below
// runs the serve_saturation scenario under both integrators and FAILS the
// bench (non-zero exit, it runs as a CTest smoke) unless the closed form
// spends >= 3x fewer integration steps while the serving-level latency and
// temperature metrics stay within 1% of the slice-based reference.
//
// PR 6 extends the same pattern to the host-side hot path and records the
// result as a machine-readable perf trajectory, BENCH_overhead.json
// (stamped with util::kSchemaVersion + build id), written to the working
// directory:
//
//  * DQN train step: scalar per-sample reference vs width-grouped blocked
//    matrix math (rl::DqnMath), gated on bit-identical losses;
//  * serve_saturation end to end under both math modes: wall-clock,
//    host requests/sec, thermal steps, scalar-matvec counts (>= 2x fewer
//    under batched math) and allocation counts, gated on byte-identical
//    scenario JSON;
//  * the summary-only ledger fast path vs full row capture (same JSON,
//    fewer allocations);
//  * the internal profiler's timers-enabled overhead on
//    serve_fleet_saturation (< 2% of wall-clock);
//  * the sim-time telemetry recorder's overhead on serve_saturation
//    (PR 7), gated hard on byte-identical scenario JSON with recording on
//    vs off, softly on wall-clock;
//  * the streaming rollup aggregation's incremental overhead on top of
//    recording (PR 9), gated hard on byte-identical scenario JSON with
//    rollups on vs off, softly on wall-clock.
//
// CI diffs the hardware-normalized ratios in the JSON against the
// committed bench/BENCH_overhead.baseline.json via
// tools/check_bench_regression.py.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <new>
#include <optional>
#include <sstream>

#include "common.hpp"
#include "harness/sinks.hpp"
#include "prof/profiler.hpp"
#include "util/build_info.hpp"

using namespace lotus;

// ---------------------------------------------------------------------------
// Allocation accounting. This binary replaces the global allocation
// functions with thin malloc wrappers that bump one relaxed counter, so the
// perf-trajectory cells below can report allocations per scenario run (the
// summary-only ledger fast path exists to drive that number down). The
// override is linked into the bench binary only; liblotus is untouched.
// Over-aligned allocations keep the toolchain defaults (uncounted) -- the
// simulator allocates none.

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

void* counted_alloc(std::size_t size) noexcept {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
    return std::malloc(size ? size : 1);
}

std::uint64_t alloc_count() noexcept {
    return g_alloc_count.load(std::memory_order_relaxed);
}

std::uint64_t alloc_bytes() noexcept {
    return g_alloc_bytes.load(std::memory_order_relaxed);
}

} // namespace

void* operator new(std::size_t size) {
    if (void* p = counted_alloc(size)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    return counted_alloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

/// Optimization barrier for the microbench loops.
volatile double g_sink = 0.0;

template <typename F>
double mean_us_per_call(F&& fn, int calls) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < calls; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(t1 - t0).count() / calls;
}

rl::MlpConfig paper_qnet_config() {
    // 4-layer MLP over the 7-feature state and the Orin's 48 joint actions.
    rl::MlpConfig cfg;
    cfg.dims = {core::kStateDim, 128, 128, 128, 48};
    cfg.slim_input = true;
    cfg.seed = 1;
    return cfg;
}

void microbench() {
    const int calls = harness::fast_mode() ? 200 : 2000;
    util::TextTable table({"operation", "mean (us/call)"});

    {
        rl::SlimmableMlp net(paper_qnet_config());
        const std::vector<double> x(core::kStateDim, 0.5);
        table.add_row({"Q-network forward, width 1.0",
                       util::format_double(mean_us_per_call(
                           [&] { g_sink = net.forward(x, 1.0)[0]; }, calls), 2)});
        table.add_row({"Q-network forward, width 0.75",
                       util::format_double(mean_us_per_call(
                           [&] { g_sink = net.forward(x, 0.75)[0]; }, calls), 2)});
    }
    {
        rl::DqnConfig dqn_cfg;
        dqn_cfg.batch_size = 32;
        rl::DqnCore dqn(paper_qnet_config(), dqn_cfg);
        rl::ReplayBuffer buffer(256);
        util::Rng rng(3);
        for (int i = 0; i < 256; ++i) {
            rl::Transition t;
            t.state = std::vector<double>(core::kStateDim, rng.uniform());
            t.action = static_cast<int>(rng.uniform_int(0, 47));
            t.reward = rng.uniform(-1, 2);
            t.next_state = std::vector<double>(core::kStateDim, rng.uniform());
            t.width_state = (i % 2 == 0) ? 0.75 : 1.0;
            t.width_next = (i % 2 == 0) ? 1.0 : 0.75;
            buffer.push(std::move(t));
        }
        table.add_row({"DQN train step, batch 32",
                       util::format_double(mean_us_per_call(
                           [&] { g_sink = dqn.train_step(buffer, rng, 1); },
                           calls / 10 + 1), 2)});
    }
    {
        // Both per-frame decisions including state encoding and action
        // decode -- the client-visible compute cost of the agent (excluding
        // the modelled socket latency, which the engine charges as dead
        // time).
        core::LotusConfig cfg;
        cfg.train_online = false;
        core::LotusAgent agent(8, 6, cfg);
        governors::Observation start;
        start.cpu_temp = 60;
        start.gpu_temp = 70;
        start.cpu_level = 5;
        start.gpu_level = 3;
        start.cpu_levels = 8;
        start.gpu_levels = 6;
        start.latency_constraint_s = 0.45;
        start.last_frame_latency_s = 0.4;
        auto rpn = start;
        rpn.proposals = 200;
        rpn.elapsed_in_frame_s = 0.3;
        governors::FrameOutcome outcome;
        outcome.latency_s = 0.4;
        outcome.latency_constraint_s = 0.45;
        outcome.cpu_temp = 60;
        outcome.gpu_temp = 70;
        table.add_row({"LOTUS decision pair (inference only)",
                       util::format_double(mean_us_per_call(
                           [&] {
                               g_sink = agent.on_frame_start(start).has_request ? 1.0 : 0.0;
                               g_sink = agent.on_post_rpn(rpn).has_request ? 1.0 : 0.0;
                               agent.on_frame_end(outcome);
                           },
                           calls), 2)});
    }
    std::printf("%s", table.render("wall-clock microbenchmarks (host CPU)").c_str());
    std::printf("(paper, Sec. 4.4.2: 0.42 ms per Q-network forward on an RTX 2080Ti)\n\n");
}

/// Relative deviation, safe around zero.
double rel_dev(double value, double reference) {
    const double denom = std::max(std::abs(reference), 1e-9);
    return std::abs(value - reference) / denom;
}

struct StepperRun {
    serving::ServingTrace trace;
    serving::ServingSummary agg;
};

StepperRun run_stepper(const serving::ServingConfig& base, platform::ThermalStepping mode,
                       const std::string& governor_name) {
    auto cfg = base;
    cfg.device_spec.thermal_stepping = mode;
    cfg.pretrain_iterations = 0; // deterministic baselines need no warm-up
    std::unique_ptr<governors::Governor> governor;
    if (governor_name == "default") {
        governor = std::make_unique<governors::DefaultGovernor>(
            governors::DefaultGovernor::orin_nano());
    } else {
        governor = std::make_unique<governors::PerformanceGovernor>();
    }
    const serving::ServingEngine engine(cfg);
    auto trace = engine.run(*governor);
    auto agg = trace.aggregate();
    return {std::move(trace), std::move(agg)};
}

/// Compare closed-form vs Euler slicing on serve_saturation; returns false
/// (failing the bench) if the acceptance bar is missed.
bool stepper_comparison() {
    const auto& sc = bench::scenario("serve_saturation");
    if (!sc.serving) {
        std::printf("serve_saturation is not a serving scenario?\n");
        return false;
    }

    bool ok = true;
    std::uint64_t total_euler = 0;
    std::uint64_t total_closed = 0;
    util::TextTable table({"governor", "steps (euler)", "steps (closed)", "reduction",
                           "max metric dev (%)"});
    for (const std::string gov : {"default", "performance"}) {
        const auto euler =
            run_stepper(*sc.serving, platform::ThermalStepping::euler_slice, gov);
        const auto closed =
            run_stepper(*sc.serving, platform::ThermalStepping::closed_form, gov);
        total_euler += euler.trace.thermal_steps();
        total_closed += closed.trace.thermal_steps();

        const double reduction = static_cast<double>(euler.trace.thermal_steps()) /
                                 static_cast<double>(closed.trace.thermal_steps());
        // Per-frame latency/temperature metrics of the serving run; every
        // one must stay within 1% of the slice-based reference.
        const double devs[] = {
            rel_dev(closed.agg.p50_ms, euler.agg.p50_ms),
            rel_dev(closed.agg.p95_ms, euler.agg.p95_ms),
            rel_dev(closed.agg.mean_device_temp_c, euler.agg.mean_device_temp_c),
            rel_dev(closed.agg.peak_device_temp_c, euler.agg.peak_device_temp_c),
        };
        double max_dev = 0.0;
        for (const double d : devs) max_dev = std::max(max_dev, d);

        table.add_row({gov, std::to_string(euler.trace.thermal_steps()),
                       std::to_string(closed.trace.thermal_steps()),
                       util::format_double(reduction, 1) + "x",
                       util::format_double(max_dev * 100.0, 3)});
        if (max_dev > 0.01) {
            std::printf("FAIL: %s: metric deviation %.3f%% > 1%%\n", gov.c_str(),
                        max_dev * 100.0);
            ok = false;
        }
    }
    // The scenario-level bar: >= 3x fewer integration steps across the
    // compared arms. (The 20 ms-tick kernel governor alone is structurally
    // capped near 4x -- its tick deadlines force 20 ms segments -- while
    // frame-grained governors reach 7x+.)
    const double total_reduction =
        static_cast<double>(total_euler) / static_cast<double>(total_closed);
    table.add_row({"TOTAL", std::to_string(total_euler), std::to_string(total_closed),
                   util::format_double(total_reduction, 1) + "x", "-"});
    if (total_reduction < 3.0) {
        std::printf("FAIL: scenario step reduction %.2fx < 3x\n", total_reduction);
        ok = false;
    }
    std::printf("%s", table.render(
        "thermal stepper: closed-form exponential vs 20 ms slicing + 5 ms Euler "
        "(serve_saturation)").c_str());
    std::printf("Metrics compared: aggregate p50/p95 end-to-end latency, mean and peak\n"
                "device temperature. Both integrators are deterministic, so --jobs N\n"
                "output stays byte-identical (CI diffs serial vs parallel runs).\n\n");
    return ok;
}

// ---------------------------------------------------------------------------
// PR 6: perf trajectory -> BENCH_overhead.json.

/// %.6g rendering for the JSON document (full precision is timer noise).
std::string json_num(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/// Harness for the perf cells: same LOTUS_BENCH_JOBS override as the shared
/// bench harness, plus the summary-only knob the shared one cannot toggle.
harness::HarnessConfig perf_harness_config(bool summary_only) {
    harness::HarnessConfig cfg;
    if (const char* jobs = std::getenv("LOTUS_BENCH_JOBS")) {
        const auto v = std::strtoull(jobs, nullptr, 10);
        if (v > 0) cfg.jobs = static_cast<std::size_t>(v);
    }
    cfg.summary_only = summary_only;
    return cfg;
}

struct TrainCell {
    double us_per_step = 0.0;
    std::uint64_t matvec_calls = 0;
    std::uint64_t allocs = 0;
    std::uint64_t alloc_bytes = 0;
    std::vector<double> losses;
};

/// Time `steps` DQN updates under one DqnMath mode. Both cells fill the
/// replay buffer and sample batches from identically seeded RNGs, so the
/// loss sequences must match bit for bit (the batched-math contract).
TrainCell run_train_cell(rl::DqnMath math, int steps) {
    rl::DqnConfig dqn_cfg;
    dqn_cfg.batch_size = 32;
    dqn_cfg.math = math;
    rl::DqnCore dqn(paper_qnet_config(), dqn_cfg);
    rl::ReplayBuffer buffer(256);
    util::Rng fill(3);
    for (int i = 0; i < 256; ++i) {
        rl::Transition t;
        t.state = std::vector<double>(core::kStateDim, fill.uniform());
        t.action = static_cast<int>(fill.uniform_int(0, 47));
        t.reward = fill.uniform(-1, 2);
        t.next_state = std::vector<double>(core::kStateDim, fill.uniform());
        t.width_state = (i % 2 == 0) ? 0.75 : 1.0;
        t.width_next = (i % 2 == 0) ? 1.0 : 0.75;
        buffer.push(std::move(t));
    }
    util::Rng rng(11); // batch sampling; same seed per cell -> same batches
    TrainCell cell;
    cell.losses.reserve(static_cast<std::size_t>(steps));
    prof::reset();
    const std::uint64_t a0 = alloc_count();
    const std::uint64_t b0 = alloc_bytes();
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < steps; ++i) cell.losses.push_back(dqn.train_step(buffer, rng, 1));
    const auto t1 = std::chrono::steady_clock::now();
    cell.us_per_step = std::chrono::duration<double, std::micro>(t1 - t0).count() / steps;
    cell.allocs = alloc_count() - a0;
    cell.alloc_bytes = alloc_bytes() - b0;
    cell.matvec_calls = prof::counter_total("rl.matvec_calls");
    return cell;
}

struct ServeCell {
    double wall_s = 0.0;
    double requests_per_sec = 0.0;
    std::uint64_t requests = 0;
    std::uint64_t thermal_steps = 0;
    std::uint64_t matvec_calls = 0;
    std::uint64_t allocs = 0;
    std::uint64_t alloc_bytes = 0;
    std::string json;
};

/// Run one full registry scenario on a fresh harness. `repeats > 1` re-runs
/// for a min-of-N wall-clock (deterministic output, so only the first run's
/// JSON/counters are kept). A forced DqnMath mode applies to every agent the
/// episodes construct and is always restored to per-config behaviour.
ServeCell run_serve_cell(const bench::Scenario& sc, std::optional<rl::DqnMath> math,
                         bool summary_only, int repeats) {
    rl::force_dqn_math(math);
    const harness::ExperimentHarness h(perf_harness_config(summary_only));
    ServeCell cell;
    for (int rep = 0; rep < repeats; ++rep) {
        prof::reset();
        const std::uint64_t a0 = alloc_count();
        const std::uint64_t b0 = alloc_bytes();
        const auto t0 = std::chrono::steady_clock::now();
        const auto results = h.run(sc);
        const auto t1 = std::chrono::steady_clock::now();
        const double wall = std::chrono::duration<double>(t1 - t0).count();
        if (rep == 0) {
            cell.wall_s = wall;
            cell.allocs = alloc_count() - a0;
            cell.alloc_bytes = alloc_bytes() - b0;
            cell.matvec_calls = prof::counter_total("rl.matvec_calls");
            for (const auto& r : results) {
                if (!r.serving_trace) continue;
                cell.requests += r.serving_trace->size();
                cell.thermal_steps += r.serving_trace->thermal_steps();
            }
            cell.json = harness::scenario_json(sc, results);
        } else {
            cell.wall_s = std::min(cell.wall_s, wall);
        }
    }
    cell.requests_per_sec = static_cast<double>(cell.requests) / std::max(cell.wall_s, 1e-9);
    rl::force_dqn_math(std::nullopt);
    return cell;
}

/// One timed scenario run (the result is discarded, only the clock matters).
double wall_of_run(const bench::Scenario& sc, const harness::ExperimentHarness& h) {
    prof::reset();
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = h.run(sc);
    const auto t1 = std::chrono::steady_clock::now();
    g_sink = static_cast<double>(results.size());
    return std::chrono::duration<double>(t1 - t0).count();
}

/// Min-of-N wall-clock with timers off vs on. The two modes are interleaved
/// (off, on, off, on, ...) after one untimed warm-up run, so clock drift and
/// cache warm-up hit both sides equally instead of biasing whichever block
/// ran first.
std::pair<double, double> profiler_ab_wall_s(const bench::Scenario& sc,
                                             const harness::ExperimentHarness& h,
                                             int pairs) {
    prof::set_enabled(false);
    g_sink = wall_of_run(sc, h); // warm-up, discarded
    double off_s = 0.0;
    double on_s = 0.0;
    for (int rep = 0; rep < pairs; ++rep) {
        prof::set_enabled(false);
        const double off = wall_of_run(sc, h);
        prof::set_enabled(true);
        const double on = wall_of_run(sc, h);
        off_s = rep == 0 ? off : std::min(off_s, off);
        on_s = rep == 0 ? on : std::min(on_s, on);
    }
    prof::set_enabled(false);
    prof::reset();
    return {off_s, on_s};
}

void emit_serve_cell(std::ostringstream& js, const char* name, const ServeCell& c,
                     const char* trailing_comma) {
    js << "      \"" << name << "\": {\"wall_s\": " << json_num(c.wall_s)
       << ", \"requests\": " << c.requests
       << ", \"requests_per_sec\": " << json_num(c.requests_per_sec)
       << ", \"thermal_steps\": " << c.thermal_steps
       << ", \"matvec_calls\": " << c.matvec_calls << ", \"allocs\": " << c.allocs
       << ", \"alloc_bytes\": " << c.alloc_bytes << "}" << trailing_comma << "\n";
}

/// Measure the perf cells, print them, gate the acceptance bars and write
/// BENCH_overhead.json. Returns false (failing the bench) on any missed bar.
bool perf_trajectory() {
    bool ok = true;
    const bool fast = harness::fast_mode();
    const int train_steps = fast ? 80 : 400;
    const int serve_repeats = fast ? 2 : 1;
    const int fleet_pairs = 2;

    // --- cell 1: DQN train step, scalar vs batched --------------------------
    const auto scalar_t = run_train_cell(rl::DqnMath::scalar, train_steps);
    const auto batched_t = run_train_cell(rl::DqnMath::batched, train_steps);
    const bool loss_identical = scalar_t.losses == batched_t.losses;
    if (!loss_identical) {
        std::printf("FAIL: scalar and batched train losses diverge\n");
        ok = false;
    }
    const double train_speedup = scalar_t.us_per_step / batched_t.us_per_step;

    util::TextTable train_table({"train step (batch 32)", "us/step", "matvec calls", "allocs"});
    train_table.add_row({"scalar", util::format_double(scalar_t.us_per_step, 2),
                         std::to_string(scalar_t.matvec_calls),
                         std::to_string(scalar_t.allocs)});
    train_table.add_row({"batched", util::format_double(batched_t.us_per_step, 2),
                         std::to_string(batched_t.matvec_calls),
                         std::to_string(batched_t.allocs)});
    train_table.add_row({"speedup", util::format_double(train_speedup, 2) + "x", "-",
                         loss_identical ? "losses bit-identical" : "LOSSES DIVERGE"});
    std::printf("%s", train_table.render("DQN math: scalar reference vs blocked batched "
                                         "(" + std::to_string(train_steps) + " steps)")
                          .c_str());

    // --- cell 2: serve_saturation end to end, scalar vs batched -------------
    const auto& sc = bench::scenario("serve_saturation");
    const auto scalar_s = run_serve_cell(sc, rl::DqnMath::scalar, false, serve_repeats);
    const auto batched_s = run_serve_cell(sc, rl::DqnMath::batched, false, serve_repeats);
    const bool serve_identical = scalar_s.json == batched_s.json;
    if (!serve_identical) {
        std::printf("FAIL: serve_saturation JSON differs between DqnMath modes\n");
        ok = false;
    }
    const double serve_speedup = scalar_s.wall_s / batched_s.wall_s;
    const double matvec_reduction =
        static_cast<double>(scalar_s.matvec_calls) /
        static_cast<double>(std::max<std::uint64_t>(batched_s.matvec_calls, 1));
    if (prof::kCompiled && matvec_reduction < 2.0) {
        std::printf("FAIL: batched math issues only %.2fx fewer scalar matvecs (< 2x)\n",
                    matvec_reduction);
        ok = false;
    }
    // Wall-clock improvement bar: only in full mode, where the episodes are
    // long enough that scheduler noise cannot flip the sign.
    if (!fast && serve_speedup <= 1.0) {
        std::printf("FAIL: batched math is not faster end to end (%.2fx)\n", serve_speedup);
        ok = false;
    }

    // --- cell 3: summary-only ledgers vs full row capture -------------------
    // Row capture is already allocation-*count* cheap (one reserve per
    // trace), so the fast path's win is the O(requests) row storage it never
    // materialises: the gate is on allocated bytes.
    const auto summary_s =
        run_serve_cell(sc, rl::DqnMath::batched, /*summary_only=*/true, serve_repeats);
    const bool summary_identical = summary_s.json == batched_s.json;
    if (!summary_identical) {
        std::printf("FAIL: summary-only JSON differs from full-ledger JSON\n");
        ok = false;
    }
    if (summary_s.alloc_bytes >= batched_s.alloc_bytes) {
        std::printf("FAIL: summary-only mode does not shrink allocated bytes "
                    "(%llu >= %llu)\n",
                    static_cast<unsigned long long>(summary_s.alloc_bytes),
                    static_cast<unsigned long long>(batched_s.alloc_bytes));
        ok = false;
    }
    const std::uint64_t ledger_bytes_saved =
        batched_s.alloc_bytes > summary_s.alloc_bytes
            ? batched_s.alloc_bytes - summary_s.alloc_bytes
            : 0;

    util::TextTable serve_table({"serve_saturation cell", "wall (s)", "req/s",
                                 "thermal steps", "matvec calls", "allocs",
                                 "alloc MB"});
    const auto serve_row = [&](const char* name, const ServeCell& c) {
        serve_table.add_row({name, util::format_double(c.wall_s, 3),
                             util::format_double(c.requests_per_sec, 1),
                             std::to_string(c.thermal_steps),
                             std::to_string(c.matvec_calls), std::to_string(c.allocs),
                             util::format_double(static_cast<double>(c.alloc_bytes) / 1e6, 2)});
    };
    serve_row("scalar math, full ledger", scalar_s);
    serve_row("batched math, full ledger", batched_s);
    serve_row("batched math, summary-only", summary_s);
    std::printf("%s", serve_table.render("hot-path layers on serve_saturation (all arms; "
                                         "JSON byte-identical across rows)")
                          .c_str());
    std::printf("batched speedup %.2fx, matvec reduction %.1fx, summary-only skips "
                "%.0f KB of ledger rows\n\n",
                serve_speedup, matvec_reduction,
                static_cast<double>(ledger_bytes_saved) / 1e3);

    // --- cell 4: profiler timers-enabled overhead ---------------------------
    const auto& fleet_sc = bench::scenario("serve_fleet_saturation");
    const harness::ExperimentHarness fleet_h(perf_harness_config(/*summary_only=*/true));
    const auto [off_s, on_s] = profiler_ab_wall_s(fleet_sc, fleet_h, fleet_pairs);
    const double overhead_pct = (on_s - off_s) / std::max(off_s, 1e-9) * 100.0;
    // 50 ms absolute floor keeps the percentage bar meaningful on the tiny
    // fast-mode runs, where one scheduler hiccup exceeds 2%.
    if (prof::kCompiled && overhead_pct > 2.0 && (on_s - off_s) > 0.05) {
        std::printf("FAIL: profiler timers cost %.2f%% of serve_fleet_saturation (>= 2%%)\n",
                    overhead_pct);
        ok = false;
    }
    std::printf("profiler timers on serve_fleet_saturation: %.3fs off, %.3fs on "
                "(%.2f%% overhead%s)\n\n",
                off_s, on_s, overhead_pct,
                prof::kCompiled ? "" : "; profiler compiled out");

    // --- cell 5: sim-time telemetry recording overhead ----------------------
    // The hard gate is correctness: scenario JSON must be byte-identical with
    // recording on vs off (instrumentation must not perturb the simulation).
    // The wall-clock bar is deliberately loose -- recording allocates per
    // event, and this cell documents the cost rather than policing scheduler
    // noise: fail only past 50% AND a 100 ms absolute excess.
    auto tel_cfg_off = perf_harness_config(/*summary_only=*/true);
    auto tel_cfg_on = tel_cfg_off;
    tel_cfg_on.telemetry = true;
    const harness::ExperimentHarness tel_h_off(tel_cfg_off);
    const harness::ExperimentHarness tel_h_on(tel_cfg_on);
    std::uint64_t tel_events = 0;
    std::uint64_t tel_breaches = 0;
    bool tel_identical = false;
    {
        // Correctness pass (doubles as warm-up for the timed pairs).
        const auto r_off = tel_h_off.run(sc);
        const auto r_on = tel_h_on.run(sc);
        tel_identical =
            harness::scenario_json(sc, r_off) == harness::scenario_json(sc, r_on);
        for (const auto& r : r_on) {
            if (!r.telemetry) continue;
            tel_events += r.telemetry->event_count();
            tel_breaches += r.telemetry->breach_count();
        }
    }
    if (!tel_identical) {
        std::printf("FAIL: scenario JSON differs with telemetry recording on\n");
        ok = false;
    }
    if (tel_events == 0) {
        std::printf("FAIL: telemetry recording captured zero events\n");
        ok = false;
    }
    double tel_off_s = 0.0;
    double tel_on_s = 0.0;
    for (int rep = 0; rep < fleet_pairs; ++rep) {
        const double off = wall_of_run(sc, tel_h_off);
        const double on = wall_of_run(sc, tel_h_on);
        tel_off_s = rep == 0 ? off : std::min(tel_off_s, off);
        tel_on_s = rep == 0 ? on : std::min(tel_on_s, on);
    }
    const double tel_overhead_pct =
        (tel_on_s - tel_off_s) / std::max(tel_off_s, 1e-9) * 100.0;
    if (tel_overhead_pct > 50.0 && (tel_on_s - tel_off_s) > 0.1) {
        std::printf("FAIL: telemetry recording costs %.2f%% of serve_saturation "
                    "(>= 50%%)\n",
                    tel_overhead_pct);
        ok = false;
    }
    std::printf("telemetry recording on serve_saturation: %.3fs off, %.3fs on "
                "(%.2f%% overhead, %llu events, %llu breaches, JSON %s)\n\n",
                tel_off_s, tel_on_s, tel_overhead_pct,
                static_cast<unsigned long long>(tel_events),
                static_cast<unsigned long long>(tel_breaches),
                tel_identical ? "byte-identical" : "DIFFERS");

    // --- cell 6: streaming rollup aggregation overhead ----------------------
    // PR 9's aggregation layer (HistSketch + windowed rollups) folds every
    // request outcome, device span and temperature sample into O(windows)
    // state whenever telemetry is on. The hard gate is again correctness:
    // scenario JSON must be byte-identical with rollups on vs off. The
    // wall-clock bar mirrors cell 5's loose shape (fail only past 50% AND a
    // 100 ms absolute excess) -- the cell documents the incremental cost of
    // aggregation on top of recording.
    auto roll_cfg_off = tel_cfg_on;
    roll_cfg_off.telemetry_options.rollups = false;
    const harness::ExperimentHarness roll_h_off(roll_cfg_off);
    bool roll_identical = false;
    {
        // Correctness pass (warm-up for the timed pairs); tel_h_on has
        // rollups on by default.
        const auto r_off = roll_h_off.run(sc);
        const auto r_on = tel_h_on.run(sc);
        roll_identical =
            harness::scenario_json(sc, r_off) == harness::scenario_json(sc, r_on);
    }
    if (!roll_identical) {
        std::printf("FAIL: scenario JSON differs with rollup aggregation on\n");
        ok = false;
    }
    double roll_off_s = 0.0;
    double roll_on_s = 0.0;
    for (int rep = 0; rep < fleet_pairs; ++rep) {
        const double off = wall_of_run(sc, roll_h_off);
        const double on = wall_of_run(sc, tel_h_on);
        roll_off_s = rep == 0 ? off : std::min(roll_off_s, off);
        roll_on_s = rep == 0 ? on : std::min(roll_on_s, on);
    }
    const double roll_overhead_pct =
        (roll_on_s - roll_off_s) / std::max(roll_off_s, 1e-9) * 100.0;
    if (roll_overhead_pct > 50.0 && (roll_on_s - roll_off_s) > 0.1) {
        std::printf("FAIL: rollup aggregation costs %.2f%% on top of recording "
                    "(>= 50%%)\n",
                    roll_overhead_pct);
        ok = false;
    }
    std::printf("rollup aggregation on serve_saturation: %.3fs off, %.3fs on "
                "(%.2f%% overhead, JSON %s)\n\n",
                roll_off_s, roll_on_s, roll_overhead_pct,
                roll_identical ? "byte-identical" : "DIFFERS");

    // --- cell 7: trace capture + replay -------------------------------------
    // The trace subsystem's whole value rests on replay being *the same
    // episode*: record serve_saturation's request timelines during one run,
    // replay the scenario from the recorded .ltrc files, and hard-gate
    // byte-identity of the scenario JSON. The wall bar mirrors cells 5/6
    // (fail only past 50% AND a 100 ms absolute excess): replay skips the
    // arrival/frame RNG work but pays file I/O, so the cell documents the
    // trade rather than policing noise.
    const auto trace_dir =
        (std::filesystem::temp_directory_path() / "bench_overhead_traces").string();
    std::filesystem::remove_all(trace_dir);
    auto rec_cfg = perf_harness_config(/*summary_only=*/true);
    rec_cfg.trace_dir = trace_dir;
    auto rep_cfg = perf_harness_config(/*summary_only=*/true);
    rep_cfg.replay_dir = trace_dir;
    const harness::ExperimentHarness rec_h(rec_cfg);
    const harness::ExperimentHarness rep_h(rep_cfg);
    bool replay_identical = false;
    std::uint64_t replay_requests = 0;
    {
        // Correctness pass (doubles as warm-up for the timed pairs).
        const auto r_gen = rec_h.run(sc);
        const auto r_rep = rep_h.run(sc);
        replay_identical =
            harness::scenario_json(sc, r_gen) == harness::scenario_json(sc, r_rep);
        for (const auto& r : r_rep) {
            if (r.serving_trace) replay_requests += r.serving_trace->size();
        }
    }
    if (!replay_identical) {
        std::printf("FAIL: scenario JSON differs between recorded and replayed runs\n");
        ok = false;
    }
    if (replay_requests == 0) {
        std::printf("FAIL: replayed run served zero requests\n");
        ok = false;
    }
    double gen_s = 0.0;
    double rep_s = 0.0;
    for (int rep = 0; rep < fleet_pairs; ++rep) {
        const double g = wall_of_run(sc, tel_h_off); // analytic arrivals, no capture
        const double r = wall_of_run(sc, rep_h);
        gen_s = rep == 0 ? g : std::min(gen_s, g);
        rep_s = rep == 0 ? r : std::min(rep_s, r);
    }
    const double replay_overhead_pct = (rep_s - gen_s) / std::max(gen_s, 1e-9) * 100.0;
    if (replay_overhead_pct > 50.0 && (rep_s - gen_s) > 0.1) {
        std::printf("FAIL: trace replay costs %.2f%% over analytic generation "
                    "(>= 50%%)\n",
                    replay_overhead_pct);
        ok = false;
    }
    std::printf("trace replay on serve_saturation: %.3fs generated, %.3fs replayed "
                "(%.2f%% overhead, %llu requests, JSON %s)\n\n",
                gen_s, rep_s, replay_overhead_pct,
                static_cast<unsigned long long>(replay_requests),
                replay_identical ? "byte-identical" : "DIFFERS");
    std::filesystem::remove_all(trace_dir);

    // --- BENCH_overhead.json -------------------------------------------------
    std::ostringstream js;
    js << "{\n"
       << "  " << util::build_info_json_fields() << ",\n"
       << "  \"bench\": \"bench_overhead\",\n"
       << "  \"fast_mode\": " << (fast ? "true" : "false") << ",\n"
       << "  \"profiling_compiled\": " << (prof::kCompiled ? "true" : "false") << ",\n"
       << "  \"cells\": {\n"
       << "    \"train_step\": {\n"
       << "      \"scalar\": {\"us_per_step\": " << json_num(scalar_t.us_per_step)
       << ", \"matvec_calls\": " << scalar_t.matvec_calls
       << ", \"allocs\": " << scalar_t.allocs
       << ", \"alloc_bytes\": " << scalar_t.alloc_bytes << "},\n"
       << "      \"batched\": {\"us_per_step\": " << json_num(batched_t.us_per_step)
       << ", \"matvec_calls\": " << batched_t.matvec_calls
       << ", \"allocs\": " << batched_t.allocs
       << ", \"alloc_bytes\": " << batched_t.alloc_bytes << "},\n"
       << "      \"speedup\": " << json_num(train_speedup) << ",\n"
       << "      \"loss_bit_identical\": " << (loss_identical ? "true" : "false") << "\n"
       << "    },\n"
       << "    \"serve_saturation\": {\n";
    emit_serve_cell(js, "scalar", scalar_s, ",");
    emit_serve_cell(js, "batched", batched_s, ",");
    js << "      \"speedup\": " << json_num(serve_speedup) << ",\n"
       << "      \"matvec_reduction\": " << json_num(matvec_reduction) << ",\n"
       << "      \"summaries_bit_identical\": " << (serve_identical ? "true" : "false")
       << "\n"
       << "    },\n"
       << "    \"summary_only_ledgers\": {\n";
    emit_serve_cell(js, "full", batched_s, ",");
    emit_serve_cell(js, "summary_only", summary_s, ",");
    js << "      \"ledger_bytes_saved\": " << ledger_bytes_saved << ",\n"
       << "      \"json_bit_identical\": " << (summary_identical ? "true" : "false") << "\n"
       << "    },\n"
       << "    \"profiler_overhead\": {\n"
       << "      \"scenario\": \"serve_fleet_saturation\",\n"
       << "      \"timers_off_wall_s\": " << json_num(off_s) << ",\n"
       << "      \"timers_on_wall_s\": " << json_num(on_s) << ",\n"
       << "      \"overhead_pct\": " << json_num(overhead_pct) << "\n"
       << "    },\n"
       << "    \"telemetry_overhead\": {\n"
       << "      \"scenario\": \"serve_saturation\",\n"
       << "      \"recording_off_wall_s\": " << json_num(tel_off_s) << ",\n"
       << "      \"recording_on_wall_s\": " << json_num(tel_on_s) << ",\n"
       << "      \"overhead_pct\": " << json_num(tel_overhead_pct) << ",\n"
       << "      \"events\": " << tel_events << ",\n"
       << "      \"breaches\": " << tel_breaches << ",\n"
       << "      \"json_bit_identical\": " << (tel_identical ? "true" : "false") << "\n"
       << "    },\n"
       << "    \"rollup_overhead\": {\n"
       << "      \"scenario\": \"serve_saturation\",\n"
       << "      \"rollups_off_wall_s\": " << json_num(roll_off_s) << ",\n"
       << "      \"rollups_on_wall_s\": " << json_num(roll_on_s) << ",\n"
       << "      \"overhead_pct\": " << json_num(roll_overhead_pct) << ",\n"
       << "      \"json_bit_identical\": " << (roll_identical ? "true" : "false") << "\n"
       << "    },\n"
       << "    \"trace_replay\": {\n"
       << "      \"scenario\": \"serve_saturation\",\n"
       << "      \"generated_wall_s\": " << json_num(gen_s) << ",\n"
       << "      \"replayed_wall_s\": " << json_num(rep_s) << ",\n"
       << "      \"overhead_pct\": " << json_num(replay_overhead_pct) << ",\n"
       << "      \"requests\": " << replay_requests << ",\n"
       << "      \"json_bit_identical\": " << (replay_identical ? "true" : "false") << "\n"
       << "    }\n"
       << "  }\n"
       << "}\n";

    const char* out_path = "BENCH_overhead.json";
    std::ofstream out(out_path);
    out << js.str();
    if (!out) {
        std::printf("FAIL: could not write %s\n", out_path);
        ok = false;
    } else {
        std::printf("perf trajectory written to %s (schema_version %d)\n\n", out_path,
                    util::kSchemaVersion);
    }
    return ok;
}

} // namespace

int main() {
    std::printf("Sec. 4.4.2 -- overhead analysis of the agent\n\n");
    microbench();

    // Modelled communication overhead, via the registry scenario: how much
    // of each measured frame the engine charged to agent round-trips.
    const auto& sc = bench::scenario("overhead_analysis");
    const auto results = bench::run(sc);
    bench::maybe_dump_csv(sc.name, results);

    const double per_decision_ms = core::LotusConfig{}.decision_overhead_s * 1e3;
    util::TextTable table({"method", "decisions/frame", "charged overhead (ms)",
                           "mean frame (ms)", "overhead share (%)"});
    for (const auto& r : results) {
        const auto s = r.trace.summary();
        // zTT decides once per frame, LOTUS at frame start + post-RPN.
        const int decisions = (r.arm == "zTT") ? 1 : 2;
        const double overhead_ms = per_decision_ms * decisions;
        table.add_row({
            r.arm,
            std::to_string(decisions),
            util::format_double(overhead_ms, 2),
            util::format_double(s.mean_latency_s * 1e3, 1),
            util::format_double(100.0 * overhead_ms / (s.mean_latency_s * 1e3), 2),
        });
    }
    table.add_row({"(paper total)", "2", "8.52", "-", "-"});
    std::printf("%s", table.render(sc.title).c_str());
    std::printf("Expected shape: the agent costs a few ms per frame -- one to two percent\n"
                "of a several-hundred-ms detector inference, the paper's negligibility\n"
                "argument.\n\n");

    const bool stepper_ok = stepper_comparison();
    // Under instrumented builds (ASan CI) wall-clock ratios are meaningless
    // and the trajectory's runs are 10x slower; LOTUS_BENCH_SKIP_PERF=1
    // skips them (the deterministic byte-identity claims stay covered by
    // the test suite, which the sanitizer job runs in full).
    const char* skip = std::getenv("LOTUS_BENCH_SKIP_PERF");
    bool trajectory_ok = true;
    if (skip != nullptr && skip[0] != '\0' && skip[0] != '0') {
        std::printf("perf trajectory skipped (LOTUS_BENCH_SKIP_PERF)\n");
    } else {
        trajectory_ok = perf_trajectory();
    }
    return (stepper_ok && trajectory_ok) ? 0 : 1;
}
