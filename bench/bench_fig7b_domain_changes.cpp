// Fig. 7b reproduction: robustness to task-domain changes. The dataset
// switches from KITTI to VisDrone2019 mid-run (with the latency constraint
// switching accordingly), FasterRCNN on the Jetson Orin Nano.

#include <cstdio>

#include "common.hpp"

using namespace lotus;

int main() {
    const auto& sc = bench::scenario("fig7b_domain_changes");
    const auto iterations = sc.config.iterations;
    const auto& segments = sc.config.schedule.all();
    const auto half = segments.at(1).first_iteration;

    std::printf("Fig. 7b -- domain changes (KITTI -> VisDrone2019 at iteration %zu)\n",
                half);
    std::printf("FasterRCNN on Jetson Orin Nano, %zu iterations, L: %.0f -> %.0f ms\n\n",
                iterations, segments.at(0).latency_constraint_s * 1e3,
                segments.at(1).latency_constraint_s * 1e3);

    const auto results = bench::run(sc);
    bench::print_figure("Fig. 7b traces", results);

    for (const auto& r : results) {
        const auto kitti = r.trace.summary(0, half);
        const auto visdrone = r.trace.summary(half, iterations);
        // Adaptation window: the first 10% of the new domain.
        const auto adapt = r.trace.summary(half, half + iterations / 10);
        std::printf("%-10s KITTI: %6.1f ms / R_L %5.1f%% | VisDrone: %6.1f ms / R_L "
                    "%5.1f%% | first-tenth after switch: R_L %5.1f%%\n",
                    r.arm.c_str(), kitti.mean_latency_s * 1e3,
                    kitti.satisfaction_rate * 100, visdrone.mean_latency_s * 1e3,
                    visdrone.satisfaction_rate * 100, adapt.satisfaction_rate * 100);
    }
    bench::maybe_dump_csv(sc.name, results);
    std::printf("\nExpected shape: all methods jump in latency at the switch (bigger\n"
                "inputs, more proposals); Lotus recovers a stable band fastest and keeps\n"
                "the highest satisfaction rate in both domains.\n");
    return 0;
}
