// Fig. 7b reproduction: robustness to task-domain changes. The dataset
// switches from KITTI to VisDrone2019 mid-run (with the latency constraint
// switching accordingly), FasterRCNN on the Jetson Orin Nano.

#include <cstdio>

#include "common.hpp"

using namespace lotus;

int main() {
    const auto spec = platform::orin_nano_spec();
    const auto iterations = bench::orin_iterations();
    const auto half = iterations / 2;

    const double l_kitti = workload::latency_constraint_s(
        spec.name, detector::DetectorKind::faster_rcnn, "KITTI");
    const double l_visdrone = workload::latency_constraint_s(
        spec.name, detector::DetectorKind::faster_rcnn, "VisDrone2019");

    std::printf("Fig. 7b -- domain changes (KITTI -> VisDrone2019 at iteration %zu)\n",
                half);
    std::printf("FasterRCNN on Jetson Orin Nano, %zu iterations, L: %.0f -> %.0f ms\n\n",
                iterations, l_kitti * 1e3, l_visdrone * 1e3);

    runtime::ExperimentConfig cfg{
        .device_spec = spec,
        .detector = detector::DetectorKind::faster_rcnn,
        .schedule = workload::DomainSchedule::segments({
            {0, "KITTI", l_kitti},
            {half, "VisDrone2019", l_visdrone},
        }),
        .ambient = workload::AmbientProfile::constant(25.0),
        .iterations = iterations,
        .pretrain_iterations = bench::pretrain_iterations(),
        .seed = 72,
        .engine = {},
    };

    auto results = bench::run_arms(
        cfg, {bench::default_arm(spec), bench::ztt_arm(spec), bench::lotus_arm(spec)});

    bench::print_figure("Fig. 7b traces", results,
                        platform::throttle_bound_celsius(spec), l_visdrone * 1e3);

    for (const auto& r : results) {
        const auto kitti = r.trace.summary(0, half);
        const auto visdrone = r.trace.summary(half, iterations);
        // Adaptation window: the first 10% of the new domain.
        const auto adapt = r.trace.summary(half, half + iterations / 10);
        std::printf("%-10s KITTI: %6.1f ms / R_L %5.1f%% | VisDrone: %6.1f ms / R_L "
                    "%5.1f%% | first-tenth after switch: R_L %5.1f%%\n",
                    r.name.c_str(), kitti.mean_latency_s * 1e3,
                    kitti.satisfaction_rate * 100, visdrone.mean_latency_s * 1e3,
                    visdrone.satisfaction_rate * 100, adapt.satisfaction_rate * 100);
    }
    bench::maybe_dump_csv("fig7b", results);
    std::printf("\nExpected shape: all methods jump in latency at the switch (bigger\n"
                "inputs, more proposals); Lotus recovers a stable band fastest and keeps\n"
                "the highest satisfaction rate in both domains.\n");
    return 0;
}
