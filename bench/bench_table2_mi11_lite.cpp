// Table 2 reproduction: quantitative results on the Mi 11 Lite (1,000
// measured iterations per arm), printed next to the paper's values
// (attached to the registry arms).

#include <cstdio>

#include "common.hpp"

using namespace lotus;

int main() {
    std::printf("Table 2 -- quantitative results on Mi 11 Lite 5G\n");
    std::printf("(%zu measured iterations per arm; learning governors pre-trained for "
                "%zu frames)\n\n",
                harness::mi11_iterations(), harness::mi11_pretrain_iterations());

    for (const char* name : {"table2_frcnn_kitti", "table2_frcnn_visdrone",
                             "table2_mrcnn_kitti", "table2_mrcnn_visdrone"}) {
        const auto& sc = bench::scenario(name);
        const auto results = bench::run(sc);
        bench::print_table_block(sc.title, results);
        bench::maybe_dump_csv(sc.name, results);
        std::printf("\n");
    }
    std::printf("Shape targets: same per-cell ordering as Table 1, at ~3-4x the Jetson's\n"
                "absolute latencies and inside the phone's skin-limited thermal band.\n");
    return 0;
}
