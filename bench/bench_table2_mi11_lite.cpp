// Table 2 reproduction: quantitative results on the Mi 11 Lite (1,000
// measured iterations per arm), printed next to the paper's values.

#include <cstdio>

#include "common.hpp"

using namespace lotus;

namespace {

struct Cell {
    detector::DetectorKind kind;
    const char* dataset;
    bench::PaperRow paper_default;
    bench::PaperRow paper_ztt;
    bench::PaperRow paper_lotus;
    std::uint64_t seed;
};

} // namespace

int main() {
    const auto spec = platform::mi11_lite_spec();
    std::printf("Table 2 -- quantitative results on Mi 11 Lite 5G\n");
    std::printf("(%zu measured iterations per arm; learning governors pre-trained for "
                "%zu frames)\n\n",
                bench::mi11_iterations(), bench::mi11_pretrain_iterations());

    const Cell cells[] = {
        {detector::DetectorKind::faster_rcnn, "KITTI",
         {1377.5, 525.1, 0.709}, {1260.9, 448.2, 0.833}, {1185.8, 429.9, 0.897}, 51},
        {detector::DetectorKind::faster_rcnn, "VisDrone2019",
         {2728.0, 761.5, 0.633}, {2509.7, 649.3, 0.797}, {2421.0, 558.7, 0.925}, 52},
        {detector::DetectorKind::mask_rcnn, "KITTI",
         {1652.1, 781.8, 0.613}, {1582.7, 610.5, 0.798}, {1429.5, 552.3, 0.915}, 53},
        {detector::DetectorKind::mask_rcnn, "VisDrone2019",
         {3241.9, 725.5, 0.401}, {2972.5, 621.7, 0.594}, {2649.5, 591.2, 0.838}, 54},
    };

    for (const auto& cell : cells) {
        auto cfg = runtime::static_experiment(spec, cell.kind, cell.dataset,
                                              bench::mi11_iterations(),
                                              bench::mi11_pretrain_iterations(), cell.seed);
        auto arm_default = bench::default_arm(spec);
        arm_default.paper = cell.paper_default;
        auto arm_ztt = bench::ztt_arm(spec, cell.seed * 7 + 1);
        arm_ztt.paper = cell.paper_ztt;
        auto arm_lotus = bench::lotus_arm(spec, cell.seed * 7 + 2);
        arm_lotus.paper = cell.paper_lotus;

        auto results = bench::run_arms(cfg, {arm_default, arm_ztt, arm_lotus});
        bench::print_table_block(std::string(detector::to_string(cell.kind)) + " / " +
                                     cell.dataset,
                                 results);
        bench::maybe_dump_csv(std::string("table2_") + detector::to_string(cell.kind) +
                                  "_" + cell.dataset,
                              results);
        std::printf("\n");
    }
    std::printf("Shape targets: same per-cell ordering as Table 1, at ~3-4x the Jetson's\n"
                "absolute latencies and inside the phone's skin-limited thermal band.\n");
    return 0;
}
